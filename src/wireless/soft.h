// Soft information: per-bit log-likelihood ratios (LLRs) — the
// "pre-knowledge of variables (wireless symbols)" the paper's Section 3.1
// proposes feeding into the QUBO as constraints (Figure 4), and the input the
// coded link (src/fec) decodes against.
//
// THE canonical LLR contract, asserted here and nowhere else:
//
//  * Sign convention: LLR_b = log P(b = 0 | y) - log P(b = 1 | y) under the
//    max-log approximation — positive LLR favours bit 0, and |LLR| measures
//    confidence.  Every producer and consumer in the repository uses this
//    convention; applying the sign goes through signed_llr() below, and the
//    llr-sign lint rule (scripts/hcq_lint.py) bans ad-hoc sign flips outside
//    src/fec and this file.
//  * Bit layout: user-major, and within a user the I-dimension bits
//    MSB-first then the Q-dimension bits MSB-first — identical to
//    wireless::modulate and the QUBO/transform layout, so LLR vectors line
//    up index-for-index with mimo_instance::tx_bits.
//  * Range: every stored LLR is finite and within [-llr_cap, +llr_cap]
//    (clamp_llr).  NaN clamps to 0 (no information), +/-inf to +/-llr_cap —
//    so accumulating LLRs (hybrid-ARQ chase combining) can never produce a
//    NaN ordering, even from a noiseless instance.
#ifndef HCQ_WIRELESS_SOFT_H
#define HCQ_WIRELESS_SOFT_H

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "wireless/mimo.h"
#include "wireless/modulation.h"

namespace hcq::wireless {

/// Saturation bound of every stored LLR.  Large enough that no plausible
/// finite channel observation reaches it (post-equalisation LLRs at the
/// noise floor stay orders of magnitude below), small enough that a
/// max_retx-deep chase-combined sum stays comfortably finite.
inline constexpr double llr_cap = 1.0e4;

/// Effective noise-variance floor used when converting costs to LLRs for a
/// (near-)noiseless instance: confidences stay bounded instead of dividing
/// by zero.
inline constexpr double llr_noise_floor = 1e-3;

/// Clamps one LLR into the canonical range: NaN -> 0 (no information),
/// out-of-range / infinite -> +/-llr_cap.
[[nodiscard]] double clamp_llr(double llr) noexcept;

/// The ONLY place a bit value turns into an LLR sign: bit 0 -> +magnitude,
/// bit 1 -> -magnitude (clamped).  `magnitude` should be non-negative;
/// a negative magnitude (a producer whose locally-best word loses to the
/// flip) passes through and flips the favoured bit accordingly.
[[nodiscard]] double signed_llr(std::uint8_t bit, double magnitude) noexcept;

/// Max-log LLRs of every bit of one symbol given a scalar observation
/// `equalized` with effective noise variance `noise_variance` (> 0).
[[nodiscard]] std::vector<double> symbol_llrs(modulation mod, linalg::cxd equalized,
                                              double noise_variance);

/// symbol_llrs into a caller-owned buffer at `out[offset .. offset+bps)` —
/// same values (then clamped via clamp_llr), no allocation after warm-up.
void symbol_llrs_into(modulation mod, linalg::cxd equalized, double noise_variance,
                      std::span<double> out);

/// Per-bit LLRs of a whole instance from its per-user equalised estimates
/// and per-user effective noise variances (canonical layout; clamped).
/// This is the linear detection paths' post-equalisation soft output.
void equalized_llrs_into(const mimo_instance& instance, const linalg::cvec& equalized,
                         std::span<const double> stream_noise_variance,
                         std::vector<double>& out);

/// Per-bit LLRs from single-bit-flip ML re-costing of a detected word:
/// LLR_b = (cost of the word with b flipped to 1 ... minus ... flipped to 0)
/// / max(noise_variance, llr_noise_floor), evaluated on the two words that
/// differ from `bits` only at b.  Deterministic, RNG-free, and independent
/// of any workspace — the soft output of the tree-search and QUBO-solver
/// paths (for the latter this IS the QUBO energy gap at the detected word,
/// by the transform round-trip invariant).  Clamped.
void flip_recost_llrs_into(const mimo_instance& instance, std::span<const std::uint8_t> bits,
                           std::vector<double>& out);

/// Per-bit LLRs for a whole instance via zero-forcing equalisation with
/// per-stream noise enhancement (diag of (H^H H)^-1), canonical layout.
/// For a noiseless instance pass `noise_floor` > 0 to bound confidences.
///
/// DEPRECATED: detection-path soft output (paths::detection_path::
/// soft_output) supersedes this free function — it produces the same
/// post-equalisation LLRs for the "zf" path through the one public API and
/// covers every other path too.  Kept for source compatibility; new code
/// must not call it.
[[deprecated("use paths::detection_path::soft_output — the unified path-level soft output")]]
[[nodiscard]] std::vector<double> zf_soft_bits(const mimo_instance& instance,
                                               double noise_floor = 1e-3);

/// Hard decisions from LLRs (0 when LLR >= 0).  NaN-safe: a NaN LLR clamps
/// to 0 first (clamp_llr) and therefore hardens to bit 0 — deterministic
/// ordering even for malformed inputs.
[[nodiscard]] std::vector<std::uint8_t> harden(const std::vector<double>& llrs);

/// harden into a caller-owned buffer — same bits, no allocation after
/// warm-up.
void harden_into(std::span<const double> llrs, std::vector<std::uint8_t>& out);

/// Chase-combining accumulate: out[i] = clamp_llr(out[i] + clamp_llr(in[i])).
/// Throws std::invalid_argument on length mismatch.  Clamping both the
/// addend and the sum keeps combined LLRs inside [-llr_cap, llr_cap] no
/// matter how many attempts accumulate.
void accumulate_llrs(std::span<const double> in, std::span<double> out);

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_SOFT_H
