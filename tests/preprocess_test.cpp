// Tests for QUBO pre-processing (Section 3.1 variable prefixing) and the
// Figure-4 soft-information constraints.
#include <gtest/gtest.h>

#include "qubo/brute_force.h"
#include "qubo/constraints.h"
#include "qubo/generator.h"
#include "qubo/preprocess.h"
#include "util/rng.h"

namespace {

namespace q = hcq::qubo;

TEST(Preprocess, FixesDominatedPositiveDiagonalToZero) {
    // Q_00 = 5 with only coupling -1: activating q0 can never pay off.
    q::qubo_model m(2);
    m.set_term(0, 0, 5.0);
    m.set_term(1, 1, -1.0);
    m.set_term(0, 1, -1.0);
    const auto result = q::prefix_variables(m);
    ASSERT_TRUE(result.fixed[0].has_value());
    EXPECT_EQ(*result.fixed[0], 0);
}

TEST(Preprocess, FixesDominatedNegativeDiagonalToOne) {
    q::qubo_model m(2);
    m.set_term(0, 0, -5.0);
    m.set_term(0, 1, 1.0);
    m.set_term(1, 1, 0.5);
    const auto result = q::prefix_variables(m);
    ASSERT_TRUE(result.fixed[0].has_value());
    EXPECT_EQ(*result.fixed[0], 1);
}

TEST(Preprocess, DiagonalOnlyModelFullyFixed) {
    q::qubo_model m(4);
    m.set_term(0, 0, 1.0);
    m.set_term(1, 1, -1.0);
    m.set_term(2, 2, 2.0);
    m.set_term(3, 3, -0.5);
    const auto result = q::prefix_variables(m);
    EXPECT_EQ(result.num_fixed(), 4u);
    EXPECT_TRUE(result.simplified());
    EXPECT_EQ(result.reduced.num_variables(), 0u);
    EXPECT_EQ(*result.fixed[0], 0);
    EXPECT_EQ(*result.fixed[1], 1);
    EXPECT_EQ(*result.fixed[2], 0);
    EXPECT_EQ(*result.fixed[3], 1);
    // The offset of the reduced model carries the fixed contribution.
    EXPECT_DOUBLE_EQ(result.reduced.offset(), -1.5);
}

TEST(Preprocess, StronglyCoupledModelNotSimplified) {
    // Large couplings relative to the diagonal: the rule cannot decide.
    q::qubo_model m(3);
    m.set_term(0, 0, 0.1);
    m.set_term(1, 1, -0.1);
    m.set_term(2, 2, 0.1);
    m.set_term(0, 1, -1.0);
    m.set_term(1, 2, 1.0);
    m.set_term(0, 2, -1.0);
    const auto result = q::prefix_variables(m);
    EXPECT_EQ(result.num_fixed(), 0u);
    EXPECT_FALSE(result.simplified());
    EXPECT_EQ(result.reduced.num_variables(), 3u);
}

TEST(Preprocess, FixpointCascades) {
    // Fixing q0 = 0 removes the only large coupling of q1, enabling a second
    // fixing that a single pass on the original model would not make.
    q::qubo_model m(2);
    m.set_term(0, 0, 10.0);  // dominated: fix q0 = 0
    m.set_term(0, 1, -9.0);
    m.set_term(1, 1, 1.0);   // with q0 present: 1 - 9 < 0 undecided; after: fix 0
    const auto iterated = q::prefix_variables(m, true);
    EXPECT_EQ(iterated.num_fixed(), 2u);
    const auto single = q::prefix_variables(m, false);
    EXPECT_EQ(single.num_fixed(), 1u);
}

TEST(Preprocess, LiftRestoresFullAssignment) {
    q::qubo_model m(3);
    m.set_term(0, 0, 5.0);
    m.set_term(0, 1, -1.0);
    m.set_term(1, 1, -0.2);
    m.set_term(1, 2, 0.6);
    m.set_term(2, 2, -0.2);
    const auto result = q::prefix_variables(m);
    ASSERT_GE(result.num_fixed(), 1u);
    const std::size_t free_count = result.reduced.num_variables();
    const q::bit_vector reduced_bits(free_count, 1);
    const auto full = result.lift(reduced_bits);
    ASSERT_EQ(full.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        if (result.fixed[i].has_value()) {
            EXPECT_EQ(full[i], *result.fixed[i]);
        }
    }
    const q::bit_vector wrong(free_count + 1, 0);
    EXPECT_THROW((void)result.lift(wrong), std::invalid_argument);
}

class PreprocessProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PreprocessProperty, FixingNeverLosesTheOptimum) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 97 + 5);
    for (int trial = 0; trial < 15; ++trial) {
        // Skew towards diagonal-dominant models so fixings actually occur.
        auto m = q::random_qubo(rng, n, 0.6, -0.4, 0.4);
        for (std::size_t i = 0; i < n; ++i) {
            m.add_term(i, i, rng.uniform(-2.0, 2.0));
        }
        const auto exact = q::brute_force_minimize(m);
        const auto result = q::prefix_variables(m);
        if (result.reduced.num_variables() == 0) {
            const auto full = result.lift({});
            EXPECT_NEAR(m.energy(full), exact.best_energy, 1e-9);
        } else {
            const auto sub = q::brute_force_minimize(result.reduced);
            const auto full = result.lift(sub.best_bits);
            EXPECT_NEAR(m.energy(full), exact.best_energy, 1e-9);
        }
    }
}

TEST_P(PreprocessProperty, ReducedEnergyConsistentWithLift) {
    const std::size_t n = GetParam();
    hcq::util::rng rng(n * 97 + 6);
    auto m = q::random_qubo(rng, n, 0.7, -1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) m.add_term(i, i, rng.uniform(-1.5, 1.5));
    const auto result = q::prefix_variables(m);
    const std::size_t free_count = result.reduced.num_variables();
    for (int trial = 0; trial < 10; ++trial) {
        const auto sub_bits = rng.bits(free_count);
        const auto full = result.lift(sub_bits);
        EXPECT_NEAR(result.reduced.energy_with_offset(sub_bits), m.energy_with_offset(full),
                    1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PreprocessProperty, ::testing::Values(3, 5, 8, 12, 16));

TEST(Constraints, PairConstraintTruthTable) {
    // C (q0 - 1)(q1 - 1): penalty C only when both bits are 0.
    for (const double c : {2.5, -1.0}) {
        q::qubo_model m(2);
        q::add_pair_constraint(m, 0, 1, 1, 1, c);
        const q::bit_vector b00{0, 0}, b01{0, 1}, b10{1, 0}, b11{1, 1};
        EXPECT_NEAR(m.energy_with_offset(b00), c, 1e-12);
        EXPECT_NEAR(m.energy_with_offset(b01), 0.0, 1e-12);
        EXPECT_NEAR(m.energy_with_offset(b10), 0.0, 1e-12);
        EXPECT_NEAR(m.energy_with_offset(b11), 0.0, 1e-12);
    }
}

TEST(Constraints, PairConstraintAllTargets) {
    for (std::uint8_t ti = 0; ti <= 1; ++ti) {
        for (std::uint8_t tj = 0; tj <= 1; ++tj) {
            q::qubo_model m(2);
            q::add_pair_constraint(m, 0, 1, ti, tj, 3.0);
            for (std::uint8_t qi = 0; qi <= 1; ++qi) {
                for (std::uint8_t qj = 0; qj <= 1; ++qj) {
                    const q::bit_vector bits{qi, qj};
                    const double expected =
                        3.0 * (static_cast<double>(qi) - ti) * (static_cast<double>(qj) - tj);
                    EXPECT_NEAR(m.energy_with_offset(bits), expected, 1e-12)
                        << "targets " << int(ti) << int(tj) << " bits " << int(qi) << int(qj);
                }
            }
        }
    }
}

TEST(Constraints, PairConstraintValidation) {
    q::qubo_model m(2);
    EXPECT_THROW(q::add_pair_constraint(m, 0, 0, 1, 1, 1.0), std::invalid_argument);
    EXPECT_THROW(q::add_pair_constraint(m, 0, 1, 2, 0, 1.0), std::invalid_argument);
}

TEST(Constraints, BitBiasTruthTable) {
    q::qubo_model m(1);
    q::add_bit_bias(m, 0, 1, 4.0);  // 4 (q - 1)^2
    const q::bit_vector zero{0}, one{1};
    EXPECT_NEAR(m.energy_with_offset(zero), 4.0, 1e-12);
    EXPECT_NEAR(m.energy_with_offset(one), 0.0, 1e-12);
    q::qubo_model m2(1);
    q::add_bit_bias(m2, 0, 0, 4.0);  // 4 q^2
    EXPECT_NEAR(m2.energy_with_offset(zero), 0.0, 1e-12);
    EXPECT_NEAR(m2.energy_with_offset(one), 4.0, 1e-12);
    EXPECT_THROW(q::add_bit_bias(m2, 0, 3, 1.0), std::invalid_argument);
}

TEST(Constraints, PatternConstraintPenalisesOnlyDoubleDeviations) {
    // The Figure-4 scheme charges a pair only when BOTH bits deviate from
    // the believed pattern — single deviations within a pair are free (one
    // reason the paper found the scheme hard to tune).  Verify the exact
    // truth table for every pattern of one pair.
    for (std::uint8_t t0 = 0; t0 <= 1; ++t0) {
        for (std::uint8_t t1 = 0; t1 <= 1; ++t1) {
            q::qubo_model m(2);
            const q::bit_vector pattern{t0, t1};
            q::add_pattern_constraint(m, 0, pattern, 9.0);
            for (std::uint8_t q0 = 0; q0 <= 1; ++q0) {
                for (std::uint8_t q1 = 0; q1 <= 1; ++q1) {
                    const q::bit_vector bits{q0, q1};
                    const double expected = (q0 != t0 && q1 != t1) ? 9.0 : 0.0;
                    EXPECT_NEAR(m.energy_with_offset(bits), expected, 1e-12)
                        << "pattern " << int(t0) << int(t1) << " bits " << int(q0) << int(q1);
                }
            }
        }
    }
}

TEST(Constraints, PatternConstraintNeverRewardsDeviation) {
    hcq::util::rng rng(41);
    const auto base = q::random_qubo(rng, 4, 1.0, -0.3, 0.3);
    auto m = base;
    const q::bit_vector pattern{1, 0, 1, 1};
    q::add_pattern_constraint(m, 0, pattern, 50.0);
    // Penalty is always >= 0 and is 0 on the believed pattern itself.
    for (std::size_t p = 0; p < 16; ++p) {
        q::bit_vector bits(4);
        for (std::size_t i = 0; i < 4; ++i) bits[i] = static_cast<std::uint8_t>((p >> i) & 1U);
        EXPECT_GE(m.energy_with_offset(bits) - base.energy_with_offset(bits), -1e-12);
    }
    EXPECT_NEAR(m.energy_with_offset(pattern), base.energy_with_offset(pattern), 1e-12);
    // The fully-wrong assignment pays the full 2 * 50 penalty.
    const q::bit_vector wrong{0, 1, 0, 0};
    EXPECT_NEAR(m.energy_with_offset(wrong) - base.energy_with_offset(wrong), 100.0, 1e-9);
}

TEST(Constraints, PatternConstraintOddLengthUsesBias) {
    q::qubo_model m(3);
    const q::bit_vector pattern{1, 1, 0};
    q::add_pattern_constraint(m, 0, pattern, 10.0);
    // Trailing bit gets a plain bias: deviating on it costs 10.
    const q::bit_vector tail_wrong{1, 1, 1};
    EXPECT_NEAR(m.energy_with_offset(tail_wrong), 10.0, 1e-12);
    EXPECT_NEAR(m.energy_with_offset(pattern), 0.0, 1e-12);
    // And the pattern is among the optima.
    const auto exact = q::brute_force_minimize(m);
    EXPECT_NEAR(m.energy(pattern), exact.best_energy, 1e-12);
    const q::bit_vector tiny{1};
    EXPECT_THROW(q::add_pattern_constraint(m, 0, tiny, 1.0), std::invalid_argument);
}

TEST(Constraints, ZeroStrengthIsNeutral) {
    hcq::util::rng rng(43);
    const auto base = q::random_qubo(rng, 3, 1.0, -1.0, 1.0);
    auto modified = base;
    q::add_pair_constraint(modified, 0, 1, 1, 1, 0.0);
    for (int trial = 0; trial < 8; ++trial) {
        const auto bits = rng.bits(3);
        EXPECT_DOUBLE_EQ(base.energy_with_offset(bits), modified.energy_with_offset(bits));
    }
}

}  // namespace
