// Headline claim (abstract / Sections 1 and 4.3) — "for an eight-user,
// 16-QAM detection/decoding problem, our version of RA achieves
// approximately up to 10x higher success probability than the previously
// published results for FA", and "approximately 2-10x better performance in
// terms of processing time".
//
// Part A runs the headline workload (8-user 16-QAM): per instance, the
// best-parameter FA is compared against the best-parameter hybrid GS+RA
// (classical GS time amortised per read) on success probability and TTS.
// Part B repeats the comparison across all four modulations at 36 variables
// (the Figure-6 corpus recipe).
#include <algorithm>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "classical/greedy.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/parallel_runner.h"
#include "core/sweep.h"
#include "metrics/delta_e.h"
#include "metrics/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;

struct outcome {
    double fa_p = 0.0;
    double fa_tts = std::numeric_limits<double>::infinity();
    double ra_p = 0.0;
    double ra_tts = std::numeric_limits<double>::infinity();

    [[nodiscard]] double speedup() const { return fa_tts / ra_tts; }
    [[nodiscard]] double p_ratio() const { return fa_p > 0.0 ? ra_p / fa_p : 0.0; }
};

outcome best_parameter_duel(const an::annealer_emulator& device,
                            const hy::experiment_instance& e, std::size_t reads,
                            hcq::util::rng& rng) {
    const auto gs = hcq::solvers::greedy_search().initialize(e.reduced.model, rng);
    const double gs_us_per_read =
        gs.elapsed_us / static_cast<double>(std::max<std::size_t>(1, reads));
    outcome best;
    for (const double sp : hy::paper_sp_grid()) {
        const auto fa = hy::evaluate_schedule(device, e.reduced.model,
                                              an::anneal_schedule::forward(1.0, sp, 1.0), reads,
                                              e.optimal_energy, rng);
        if (fa.tts_us < best.fa_tts) {
            best.fa_tts = fa.tts_us;
            best.fa_p = fa.p_star;
        }
        const auto schedule = an::anneal_schedule::reverse(sp, 1.0);
        const auto ra = hy::evaluate_schedule(device, e.reduced.model, schedule, reads,
                                              e.optimal_energy, rng, gs.bits);
        const double duration = schedule.duration_us() + gs_us_per_read;
        const double tts = ra.p_star > 0.0 ? hy::time_to_solution_us(duration, ra.p_star)
                                           : std::numeric_limits<double>::infinity();
        if (tts < best.ra_tts) {
            best.ra_tts = tts;
            best.ra_p = ra.p_star;
        }
    }
    return best;
}

std::string fmt_or_inf(double v, int precision = 1) {
    return std::isinf(v) ? "inf" : hcq::util::format_double(v, precision);
}

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Headline: best-parameter hybrid GS+RA vs best-parameter FA",
               "Kim et al., HotNets'20, abstract + Section 4.3");

    const std::size_t instances = ctx.scaled(8);
    const std::size_t reads = ctx.scaled(300);
    const an::annealer_emulator device;
    const hy::parallel_runner runner;

    // --- Part A: the paper's headline workload, 8-user 16-QAM. ---
    std::cout << "[A] 8-user 16-QAM (32 variables), " << instances << " instances, " << reads
              << " reads/setting\n";
    {
        const auto corpus = runner.make_corpus(ctx.seed + 500, instances, 8,
                                               wl::modulation::qam16);
        std::vector<outcome> outcomes(instances);
        hcq::util::parallel_for(instances, [&](std::size_t i) {
            hcq::util::rng rng(hcq::util::rng(ctx.seed + 17).derive(i)());
            outcomes[i] = best_parameter_duel(device, corpus[i], reads, rng);
        });

        hcq::util::table t({"instance", "FA p*", "FA TTS us", "GS+RA p*", "GS+RA TTS us",
                            "TTS speedup x", "p* ratio x"});
        hcq::metrics::running_stats speedups;
        double max_ratio = 0.0;
        std::size_t wins = 0;
        for (std::size_t i = 0; i < instances; ++i) {
            const auto& o = outcomes[i];
            t.add(i, o.fa_p, fmt_or_inf(o.fa_tts), o.ra_p, fmt_or_inf(o.ra_tts),
                  fmt_or_inf(o.speedup(), 2), hcq::util::format_double(o.p_ratio(), 2));
            if (!std::isinf(o.speedup()) && !std::isnan(o.speedup())) {
                speedups.add(o.speedup());
                if (o.speedup() > 1.0) ++wins;
            }
            max_ratio = std::max(max_ratio, o.p_ratio());
        }
        ctx.emit(t);
        std::cout << "hybrid wins TTS on " << wins << "/" << instances
                  << " instances; mean speedup " << hcq::util::format_double(speedups.mean(), 2)
                  << "x, max " << hcq::util::format_double(speedups.max(), 2)
                  << "x; max success-probability ratio "
                  << hcq::util::format_double(max_ratio, 2) << "x (paper: up to ~10x)\n\n";
    }

    // --- Part B: all modulations at 36 variables (Figure-6 recipe). ---
    std::cout << "[B] 36-variable corpus per modulation, " << instances << " instances each\n";
    hcq::util::table t({"modulation", "FA mean p*", "GS+RA mean p*", "mean TTS speedup x",
                        "hybrid TTS wins"});
    for (const auto mod : wl::all_modulations()) {
        const std::size_t users = wl::users_for_variables(mod, 36);
        const auto corpus = runner.make_corpus(ctx.seed + static_cast<std::uint64_t>(mod),
                                               instances, users, mod);
        std::vector<outcome> outcomes(instances);
        hcq::util::parallel_for(instances, [&](std::size_t i) {
            hcq::util::rng rng(hcq::util::rng(ctx.seed + 29).derive(i)());
            outcomes[i] = best_parameter_duel(device, corpus[i], reads, rng);
        });
        hcq::metrics::running_stats fa_p, ra_p, speedups;
        std::size_t wins = 0;
        for (const auto& o : outcomes) {
            fa_p.add(o.fa_p);
            ra_p.add(o.ra_p);
            if (!std::isinf(o.speedup()) && !std::isnan(o.speedup())) {
                speedups.add(o.speedup());
                if (o.speedup() > 1.0) ++wins;
            }
        }
        t.add(wl::to_string(mod), fa_p.mean(), ra_p.mean(),
              speedups.count() > 0 ? hcq::util::format_double(speedups.mean(), 2) : "-",
              std::to_string(wins) + "/" + std::to_string(instances));
    }
    ctx.emit(t);
    std::cout << "Paper shape check: the hybrid attains better TTS than FA on most 16-QAM\n"
                 "instances with success-probability ratios well above 1 (paper: up to ~10x\n"
                 "on hardware); easy corpora (BPSK/QPSK) saturate at p* ~ 1 where no method\n"
                 "can beat a single read.  See EXPERIMENTS.md for the honest deltas.\n";
    return 0;
}
