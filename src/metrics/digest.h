// Fixed-memory streaming quantile digest for latency-style data.
//
// Million-use link runs cannot hold per-channel-use latency vectors just to
// report p50/p99 (ISSUE: memory must be O(paths), not O(uses x paths)).  This
// digest bins non-negative samples into logarithmically spaced buckets over a
// configurable range, so quantiles come back with a bounded *relative* error
// (half a bin ratio — about 0.4% at the defaults) from a few tens of KB of
// state, no matter how many samples stream through.
//
// Exactness guarantees on top of the binned quantiles:
//   * count / sum / mean / min / max are exact (tracked outside the bins);
//   * quantile() clamps into [min, max], so a single-sample digest — and any
//     all-equal stream — reports that exact value for every percentile;
//   * merge() of two digests with identical geometry equals the digest of the
//     concatenated streams.
#ifndef HCQ_METRICS_DIGEST_H
#define HCQ_METRICS_DIGEST_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcq::metrics {

/// Streaming log-binned quantile digest over non-negative samples.
class latency_digest {
public:
    /// Default geometry: [1e-3, 1e9) us (1 ns .. 1000 s) across 4096 bins —
    /// ~0.7% bin ratio, ~0.4% worst-case relative quantile error, 32 KB.
    latency_digest();

    /// Custom geometry.  Throws std::invalid_argument unless
    /// 0 < lo < hi, both finite, and num_bins >= 1.
    latency_digest(double lo, double hi, std::size_t num_bins);

    /// Adds one sample.  Samples below `lo` land in an underflow bucket and
    /// samples at or above `hi` in an overflow bucket, so nothing is ever
    /// silently discarded; min/max stay exact either way.  Throws
    /// std::invalid_argument on a negative or non-finite sample.
    void add(double value);

    /// Folds `other` into this digest.  Throws std::invalid_argument when
    /// the two geometries differ.
    void merge(const latency_digest& other);

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    /// Exact mean; 0 when empty.
    [[nodiscard]] double mean() const noexcept;
    /// Exact extrema; 0 when empty.
    [[nodiscard]] double min() const noexcept;
    [[nodiscard]] double max() const noexcept;

    /// p-th quantile (0..100) estimate: the geometric centre of the bin
    /// holding the ceil(p/100 * count)-th smallest sample, clamped into
    /// [min, max].  Returns 0 on an empty digest; throws
    /// std::invalid_argument on p outside [0, 100].
    [[nodiscard]] double quantile(double p) const;

    [[nodiscard]] double p50() const { return quantile(50.0); }
    [[nodiscard]] double p99() const { return quantile(99.0); }

    [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size() - 2; }
    [[nodiscard]] double range_lo() const noexcept { return lo_; }
    [[nodiscard]] double range_hi() const noexcept { return hi_; }

private:
    [[nodiscard]] std::size_t bin_index(double value) const;
    [[nodiscard]] double bin_center(std::size_t bin) const;

    double lo_ = 0.0;
    double hi_ = 0.0;
    double inv_log_ratio_ = 0.0;  ///< 1 / ln(bin ratio)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    /// counts_[0] is the underflow bucket (< lo), counts_.back() the
    /// overflow bucket (>= hi), the rest the log-spaced bins.
    std::vector<std::uint64_t> counts_;
};

}  // namespace hcq::metrics

#endif  // HCQ_METRICS_DIGEST_H
