// Tests for the hybrid layer: TTS (Eq. 2), the hybrid solver, schedule
// evaluation, and the paper-corpus factory.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "classical/greedy.h"
#include "core/experiment.h"
#include "core/hybrid_solver.h"
#include "core/sweep.h"
#include "core/tts.h"
#include "detect/sphere.h"
#include "metrics/delta_e.h"
#include "util/rng.h"

namespace {

namespace hy = hcq::hybrid;
namespace an = hcq::anneal;
namespace wl = hcq::wireless;

TEST(Tts, KnownValues) {
    // p* = 0.5, C = 99%: log(0.01)/log(0.5) = 6.644 runs.
    EXPECT_NEAR(hy::time_to_solution_us(1.0, 0.5, 99.0), std::log(0.01) / std::log(0.5), 1e-9);
    // Doubling the duration doubles TTS.
    EXPECT_NEAR(hy::time_to_solution_us(2.0, 0.5, 99.0),
                2.0 * hy::time_to_solution_us(1.0, 0.5, 99.0), 1e-9);
}

TEST(Tts, EdgeCases) {
    EXPECT_TRUE(std::isinf(hy::time_to_solution_us(1.0, 0.0)));
    EXPECT_DOUBLE_EQ(hy::time_to_solution_us(3.0, 1.0), 3.0);
    // Very high p*: formula would dip below one read; clamps to duration.
    EXPECT_DOUBLE_EQ(hy::time_to_solution_us(3.0, 0.9999), 3.0);
    EXPECT_THROW((void)hy::time_to_solution_us(0.0, 0.5), std::invalid_argument);
    EXPECT_THROW((void)hy::time_to_solution_us(1.0, 0.5, 0.0), std::invalid_argument);
    EXPECT_THROW((void)hy::time_to_solution_us(1.0, 0.5, 100.0), std::invalid_argument);
}

TEST(Tts, MonotoneInSuccessProbability) {
    double prev = std::numeric_limits<double>::infinity();
    for (double p = 0.05; p < 1.0; p += 0.05) {
        const double tts = hy::time_to_solution_us(1.0, p);
        EXPECT_LE(tts, prev + 1e-12);
        prev = tts;
    }
}

TEST(Experiment, PaperInstanceGroundTruthHolds) {
    for (const auto mod : wl::all_modulations()) {
        hcq::util::rng rng(static_cast<std::uint64_t>(mod) + 50);
        const auto e = hy::make_paper_instance(rng, 36 / wl::bits_per_symbol(mod), mod);
        EXPECT_EQ(e.num_variables(), 36u) << wl::to_string(mod);
        EXPECT_TRUE(hy::verify_ground_truth(e)) << wl::to_string(mod);
        EXPECT_NEAR(e.optimal_energy, -e.reduced.model.offset(), 1e-6);
        EXPECT_LT(e.optimal_energy, 0.0);  // nontrivial negative minimum
    }
}

TEST(Experiment, GroundTruthConfirmedBySphereDecoder) {
    hcq::util::rng rng(51);
    const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    const auto sd = hcq::detect::sphere_detector().detect(e.instance);
    EXPECT_EQ(sd.bits, e.optimal_bits);
    EXPECT_NEAR(sd.ml_cost, 0.0, 1e-8);
}

TEST(Experiment, CorpusIsDeterministicAndSized) {
    const auto a = hy::make_paper_corpus(1234, 5, 4, wl::modulation::qam16);
    const auto b = hy::make_paper_corpus(1234, 5, 4, wl::modulation::qam16);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a[i].optimal_bits, b[i].optimal_bits);
        EXPECT_DOUBLE_EQ(a[i].optimal_energy, b[i].optimal_energy);
    }
    // Different indices give different instances.
    EXPECT_NE(a[0].optimal_bits == a[1].optimal_bits &&
                  a[1].optimal_bits == a[2].optimal_bits,
              true);
    EXPECT_THROW((void)hy::make_paper_corpus(1, 0, 4, wl::modulation::qpsk),
                 std::invalid_argument);
}

TEST(Experiment, AdjacentSeedCorporaShareNoInstances) {
    // Seed + index streams must be jointly independent: corpora built from
    // adjacent master seeds (the common "seed, seed+1, ..." usage in benches)
    // must not reproduce each other's instances at any index pairing.
    const std::size_t count = 8;
    const auto a = hy::make_paper_corpus(900, count, 4, wl::modulation::qam16);
    const auto b = hy::make_paper_corpus(901, count, 4, wl::modulation::qam16);
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t j = 0; j < count; ++j) {
            bool same_channel = true;
            const auto& ha = a[i].instance.h;
            const auto& hb = b[j].instance.h;
            for (std::size_t r = 0; r < ha.rows() && same_channel; ++r) {
                for (std::size_t c = 0; c < ha.cols(); ++c) {
                    if (ha(r, c) != hb(r, c)) {
                        same_channel = false;
                        break;
                    }
                }
            }
            EXPECT_FALSE(same_channel) << "corpora with seeds 900/901 share instance (" << i
                                       << ", " << j << ")";
        }
    }
    // The underlying derive() streams themselves must not collide either.
    const hcq::util::rng base_a(900);
    const hcq::util::rng base_b(901);
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t j = 0; j < count; ++j) {
            hcq::util::rng sa = base_a.derive(i);
            hcq::util::rng sb = base_b.derive(j);
            EXPECT_NE(sa(), sb()) << "derive collision at (" << i << ", " << j << ")";
        }
    }
}

TEST(Experiment, HarvestBinsRespectBounds) {
    hcq::util::rng rng(52);
    const auto e = hy::make_paper_instance(rng, 4, wl::modulation::qam16);
    const auto bins = hy::harvest_initial_states(e, 2.0, 10.0, 3000, rng);
    EXPECT_EQ(bins.num_bins(), 5u);
    EXPECT_GT(bins.total(), 0u);
    for (std::size_t b = 0; b < bins.num_bins(); ++b) {
        for (const auto& state : bins.states[b]) {
            const double gap =
                hcq::metrics::delta_e_percent(e.reduced.model.energy(state), e.optimal_energy);
            EXPECT_GE(gap, 2.0 * static_cast<double>(b) - 1e-9);
            EXPECT_LT(gap, 2.0 * static_cast<double>(b + 1) + 1e-9);
        }
    }
    EXPECT_THROW((void)hy::harvest_initial_states(e, 0.0, 10.0, 10, rng),
                 std::invalid_argument);
}

TEST(Experiment, HarvestFindsNearOptimalStates) {
    // On the paper's Figure-7 workload (8-user 16-QAM) the harvest must
    // populate low-quality bins, and no harvested state may be the optimum
    // itself (Delta-E_IS = 0 is the separately-studied reference).
    hcq::util::rng rng(53);
    const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    const auto bins = hy::harvest_initial_states(e, 2.0, 10.0, 6000, rng);
    EXPECT_GT(bins.states[0].size() + bins.states[1].size(), 0u);
    for (const auto& bin : bins.states) {
        for (const auto& state : bin) {
            EXPECT_GT(hcq::metrics::delta_e_percent(e.reduced.model.energy(state),
                                                    e.optimal_energy),
                      0.0);
        }
    }
}

TEST(Experiment, AnnealerHarvestProducesBinnedRelaxedStates) {
    hcq::util::rng rng(58);
    const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    const an::annealer_emulator device;
    const auto bins = hy::harvest_annealer_states(e, device, 2.0, 10.0, 150, rng);
    EXPECT_EQ(bins.num_bins(), 5u);
    EXPECT_GT(bins.total(), 0u);
    for (std::size_t b = 0; b < bins.num_bins(); ++b) {
        for (const auto& state : bins.states[b]) {
            const double gap =
                hcq::metrics::delta_e_percent(e.reduced.model.energy(state), e.optimal_energy);
            EXPECT_GT(gap, 0.0);
            EXPECT_GE(gap, 2.0 * static_cast<double>(b) - 1e-9);
            EXPECT_LT(gap, 2.0 * static_cast<double>(b + 1) + 1e-9);
        }
    }
    EXPECT_THROW((void)hy::harvest_annealer_states(e, device, 0.0, 10.0, 10, rng),
                 std::invalid_argument);
    EXPECT_THROW((void)hy::harvest_annealer_states(e, device, 2.0, 10.0, 0, rng),
                 std::invalid_argument);
}

TEST(HybridSolver, RequiresReverseSchedule) {
    const hcq::solvers::greedy_search gs;
    const an::annealer_emulator device;
    EXPECT_THROW(hy::hybrid_solver(gs, device, an::anneal_schedule::forward_plain(1.0), 10),
                 std::invalid_argument);
    EXPECT_THROW(hy::hybrid_solver(gs, device, an::anneal_schedule::reverse(0.5, 1.0), 0),
                 std::invalid_argument);
}

TEST(HybridSolver, SolvesAndAccounts) {
    hcq::util::rng rng(54);
    const auto e = hy::make_paper_instance(rng, 4, wl::modulation::qam16);
    const hcq::solvers::greedy_search gs;
    const an::annealer_emulator device;
    const hy::hybrid_solver solver(gs, device, an::anneal_schedule::reverse(0.45, 1.0), 30);
    EXPECT_EQ(solver.name(), "GS+RA");
    EXPECT_EQ(solver.num_reads(), 30u);

    const auto result = solver.solve(e.reduced.model, rng);
    EXPECT_EQ(result.samples.size(), 30u);
    // The best result can never be worse than the classical candidate.
    EXPECT_LE(result.best_energy, result.initial.energy + 1e-12);
    EXPECT_NEAR(result.quantum_us, solver.schedule().duration_us() * 30.0, 1e-9);
    EXPECT_GE(result.classical_us, 0.0);
    EXPECT_NEAR(e.reduced.model.energy(result.best_bits), result.best_energy, 1e-9);
}

TEST(HybridSolver, GsInitialStateIsGoodQuality) {
    // The paper observes GS initial states are decent starting candidates
    // (theirs score roughly <= 10% under their metric).  With the paper's
    // ascending rank order our GS lands a bit higher in energy (see the
    // greedy-order ablation bench) but must stay far below random guessing
    // (~30%+) on every instance.
    hcq::util::rng rng(55);
    int good = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
        auto stream = rng.derive(t);
        const auto e = hy::make_paper_instance(stream, 8, wl::modulation::qam16);
        const auto init = hcq::solvers::greedy_search().initialize(e.reduced.model, stream);
        const double gap = hcq::metrics::delta_e_percent(init.energy, e.optimal_energy);
        if (gap <= 30.0) ++good;
    }
    EXPECT_GE(good, 8);
}

TEST(Sweep, PaperGridMatchesSection42) {
    const auto grid = hy::paper_sp_grid();
    ASSERT_FALSE(grid.empty());
    EXPECT_NEAR(grid.front(), 0.25, 1e-12);
    EXPECT_NEAR(grid[1] - grid[0], 0.04, 1e-12);
    EXPECT_LE(grid.back(), 0.99 + 1e-9);
    EXPECT_GE(grid.back(), 0.95);
    EXPECT_EQ(grid.size(), 19u);
}

TEST(Sweep, EvaluateScheduleAggregates) {
    hcq::util::rng rng(56);
    const auto e = hy::make_paper_instance(rng, 4, wl::modulation::qpsk);
    const an::annealer_emulator device;
    const auto eval =
        hy::evaluate_schedule(device, e.reduced.model, an::anneal_schedule::reverse(0.45, 1.0),
                              40, e.optimal_energy, rng, e.optimal_bits);
    EXPECT_EQ(eval.reads, 40u);
    EXPECT_NEAR(eval.duration_us, 2.0 * (1.0 - 0.45) + 1.0, 1e-12);
    EXPECT_GE(eval.p_star, 0.0);
    EXPECT_LE(eval.p_star, 1.0);
    EXPECT_GE(eval.mean_delta_e, 0.0);
    if (eval.p_star > 0.0) {
        EXPECT_GE(eval.tts_us, eval.duration_us);
    } else {
        EXPECT_TRUE(std::isinf(eval.tts_us));
    }
}

TEST(Sweep, FrOracleSearchesAboveSp) {
    hcq::util::rng rng(57);
    const auto e = hy::make_paper_instance(rng, 3, wl::modulation::qpsk);
    const an::annealer_emulator device;
    const auto fr = hy::best_forward_reverse(device, e.reduced.model, 0.41, 1.0, 1.0, 20,
                                             e.optimal_energy, rng);
    EXPECT_GT(fr.best_cp, 0.41);
    EXPECT_LT(fr.best_cp, 1.0);
    EXPECT_EQ(fr.eval.reads, 20u);
    EXPECT_THROW((void)hy::best_forward_reverse(device, e.reduced.model, 0.98, 1.0, 1.0, 5,
                                                e.optimal_energy, rng),
                 std::invalid_argument);
}

TEST(DeltaE, MetricSemantics) {
    EXPECT_DOUBLE_EQ(hcq::metrics::delta_e_percent(-10.0, -10.0), 0.0);
    EXPECT_DOUBLE_EQ(hcq::metrics::delta_e_percent(-9.0, -10.0), 10.0);
    EXPECT_DOUBLE_EQ(hcq::metrics::delta_e_percent(-10.0 - 1e-12, -10.0), 0.0);  // clamps
    EXPECT_THROW((void)hcq::metrics::delta_e_percent(1.0, 0.0), std::invalid_argument);
    EXPECT_EQ(hcq::metrics::delta_e_bin(3.9, 2.0), 1u);
    EXPECT_EQ(hcq::metrics::delta_e_bin(4.0, 2.0), 2u);
}

}  // namespace
