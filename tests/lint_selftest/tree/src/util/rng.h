// Fixture: the rng module itself is the raw-rng allowlist — the engine and
// <random> are legal here and must not fire.
#ifndef FIXTURE_RNG_H
#define FIXTURE_RNG_H

#include <random>

namespace fixture {
using engine = std::mt19937_64;
}

#endif  // FIXTURE_RNG_H
