// Fixed-complexity sphere decoder (Barbero & Thompson [4]): exhaustively
// enumerates the top `full_levels` tree levels and completes each branch by
// greedy (Babai) slicing.  Deterministic latency — the property that makes
// it attractive for pipelined base-station processing and, per Section 5 of
// the paper, a tunable-quality hybrid initialiser.
#ifndef HCQ_DETECT_FCSD_H
#define HCQ_DETECT_FCSD_H

#include "detect/detector.h"

namespace hcq::detect {

/// FCSD with `full_levels` fully-enumerated levels (0 = pure Babai slicing).
class fcsd_detector final : public detector {
public:
    explicit fcsd_detector(std::size_t full_levels = 1);

    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                     detection_result& out) const override;
    [[nodiscard]] std::string name() const override;

    [[nodiscard]] std::size_t full_levels() const noexcept { return full_levels_; }

private:
    std::size_t full_levels_;
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_FCSD_H
