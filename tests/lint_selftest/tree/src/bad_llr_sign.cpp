// Fixture: deliberate llr-sign violations — ad-hoc bit->sign arithmetic on
// LLR-carrying lines outside the soft/coding layers.
double fixture_llr_bipolar(int bit) {
    double llr = (1.0 - 2.0 * bit) * 3.5;
    return llr;
}

double fixture_llr_ternary(int bit, double llr_mag) {
    return bit ? -llr_mag : llr_mag;
}

double fixture_llr_pow(double bit, double llr_mag) {
    return pow(-1.0, bit) * llr_mag;
}
