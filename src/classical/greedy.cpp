#include "classical/greedy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/timer.h"

namespace hcq::solvers {

initial_state greedy_search::initialize(const qubo::qubo_model& q, util::rng&) const {
    const util::timer clock;
    const std::size_t n = q.num_variables();
    initial_state out;
    out.bits.assign(n, 0);
    if (n == 0) {
        out.energy = 0.0;
        out.elapsed_us = clock.elapsed_us();
        return out;
    }

    // Ising linear terms: h_i = Q_ii / 2 + (1/4) * sum_{k != i} c_ik.
    std::vector<double> h(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = q.row(i);
        double acc = row[i] / 2.0;
        for (std::size_t k = 0; k < n; ++k) {
            if (k != i) acc += row[k] / 4.0;
        }
        h[i] = acc;
    }

    std::vector<std::size_t> rank(n);
    std::iota(rank.begin(), rank.end(), 0);
    std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
        return order_ == rank_order::most_decided_first
                   ? std::fabs(h[a]) > std::fabs(h[b])
                   : std::fabs(h[a]) < std::fabs(h[b]);
    });

    // Partial local fields over the set variables only:
    //   field_i = Q_ii + sum_{set k} c_ik q_k.
    std::vector<double> field(n);
    for (std::size_t i = 0; i < n; ++i) field[i] = q.row(i)[i];
    std::vector<bool> is_set(n, false);

    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = rank[step];
        std::uint8_t value = 0;
        if (step == 0) {
            value = h[i] > 0.0 ? 0 : 1;  // paper: first bit by the sign of h_i
        } else {
            value = field[i] > 0.0 ? 0 : 1;  // minimise the partial energy
        }
        out.bits[i] = value;
        is_set[i] = true;
        if (value == 1) {
            const auto row = q.row(i);
            for (std::size_t j = 0; j < n; ++j) {
                if (j != i && !is_set[j]) field[j] += row[j];
            }
        }
    }

    out.energy = q.energy(out.bits);
    out.elapsed_us = clock.elapsed_us();
    return out;
}

void greedy_search::initialize_into(const qubo::qubo_model& q, util::rng&, solve_scratch& scratch,
                                    initial_state& out) const {
    const util::timer clock;
    const std::size_t n = q.num_variables();
    out.bits.assign(n, 0);
    if (n == 0) {
        out.energy = 0.0;
        out.elapsed_us = clock.elapsed_us();
        return;
    }

    std::vector<double>& h = scratch.real_a;
    h.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = q.row(i);
        double acc = row[i] / 2.0;
        for (std::size_t k = 0; k < n; ++k) {
            if (k != i) acc += row[k] / 4.0;
        }
        h[i] = acc;
    }

    // Stable insertion sort of the rank order: any stable sort produces the
    // identical permutation, and unlike std::stable_sort this one never
    // touches the heap (N is a handful of bits per user).
    std::vector<std::size_t>& rank = scratch.index_a;
    rank.resize(n);
    std::iota(rank.begin(), rank.end(), 0);
    const auto precedes = [&](std::size_t a, std::size_t b) {
        return order_ == rank_order::most_decided_first ? std::fabs(h[a]) > std::fabs(h[b])
                                                        : std::fabs(h[a]) < std::fabs(h[b]);
    };
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t key = rank[i];
        std::size_t j = i;
        while (j > 0 && precedes(key, rank[j - 1])) {
            rank[j] = rank[j - 1];
            --j;
        }
        rank[j] = key;
    }

    std::vector<double>& field = scratch.real_b;
    field.resize(n);
    for (std::size_t i = 0; i < n; ++i) field[i] = q.row(i)[i];
    std::vector<std::uint8_t>& is_set = scratch.mask_a;
    is_set.assign(n, 0);

    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = rank[step];
        std::uint8_t value = 0;
        if (step == 0) {
            value = h[i] > 0.0 ? 0 : 1;
        } else {
            value = field[i] > 0.0 ? 0 : 1;
        }
        out.bits[i] = value;
        is_set[i] = 1;
        if (value == 1) {
            const auto row = q.row(i);
            for (std::size_t j = 0; j < n; ++j) {
                if (j != i && !is_set[j]) field[j] += row[j];
            }
        }
    }

    out.energy = q.energy(out.bits);
    out.elapsed_us = clock.elapsed_us();
}

}  // namespace hcq::solvers
