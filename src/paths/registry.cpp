#include "paths/registry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace hcq::paths {

namespace detail {
// Defined in builtin_paths.cpp; referencing it from here also guarantees the
// linker keeps that translation unit when hcq is consumed as a static
// library (a registration-only TU with no referenced symbol would be
// dropped, silently emptying the registry).
void register_builtin_paths();
}  // namespace detail

namespace {

struct registry_state {
    util::mutex mutex;
    /// Ordered map on purpose: available()/entries()/help() iterate it into
    /// user-visible listings, which must not depend on hash order.
    std::map<std::string, path_info> entries HCQ_GUARDED_BY(mutex);
};

registry_state& state() {
    static registry_state s;
    return s;
}

// Set while register_builtin_paths runs so its register_path calls do not
// re-enter the call_once below (which would deadlock).
thread_local bool registering_builtins = false;

void ensure_builtins() {
    if (registering_builtins) return;
    static std::once_flag once;
    std::call_once(once, [] {
        registering_builtins = true;
        detail::register_builtin_paths();
        registering_builtins = false;
    });
}

std::string join(const std::vector<std::string>& items, const char* sep) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += sep;
        out += items[i];
    }
    return out;
}

}  // namespace

void registry::register_path(path_info info) {
    ensure_builtins();
    if (info.kind.empty()) throw std::invalid_argument("paths: cannot register an empty kind");
    if (!info.factory) {
        throw std::invalid_argument("paths: path '" + info.kind + "' registered without a factory");
    }
    auto& st = state();
    const util::mutex_lock lock(st.mutex);
    const auto [it, inserted] = st.entries.emplace(info.kind, std::move(info));
    if (!inserted) {
        throw std::invalid_argument("paths: detection path '" + it->first +
                                    "' is already registered");
    }
}

std::vector<std::string> registry::available() {
    ensure_builtins();
    auto& st = state();
    const util::mutex_lock lock(st.mutex);
    std::vector<std::string> kinds;
    kinds.reserve(st.entries.size());
    for (const auto& [kind, info] : st.entries) kinds.push_back(kind);
    return kinds;  // std::map iteration order is already sorted
}

std::vector<path_info> registry::entries() {
    ensure_builtins();
    auto& st = state();
    const util::mutex_lock lock(st.mutex);
    std::vector<path_info> out;
    out.reserve(st.entries.size());
    for (const auto& [kind, info] : st.entries) out.push_back(info);
    return out;
}

bool registry::is_registered(const std::string& kind) {
    ensure_builtins();
    auto& st = state();
    const util::mutex_lock lock(st.mutex);
    return st.entries.count(kind) != 0;
}

std::string registry::help() {
    std::ostringstream os;
    os << "detection paths (--paths spec strings: kind or kind:key=value,key=value):\n";
    for (const auto& info : entries()) {
        os << "  " << info.kind;
        os << std::string(info.kind.size() < 8 ? 8 - info.kind.size() : 1, ' ');
        os << info.summary << "\n";
        for (const auto& key : info.keys) {
            os << "      " << key.name;
            os << std::string(key.name.size() < 10 ? 10 - key.name.size() : 1, ' ');
            os << key.summary << "\n";
        }
    }
    return os.str();
}

std::shared_ptr<const detection_path> registry::make(const path_spec& spec) {
    ensure_builtins();
    path_info info;  // copied out so available() below can re-lock
    {
        auto& st = state();
        const util::mutex_lock lock(st.mutex);
        const auto it = st.entries.find(spec.kind);
        if (it != st.entries.end()) info = it->second;
    }
    if (!info.factory) {
        throw std::invalid_argument("paths: unknown detection path '" + spec.kind +
                                    "' (available: " + join(available(), ", ") + ")");
    }
    for (const auto& [key, value] : spec.args) {
        const bool known = std::any_of(info.keys.begin(), info.keys.end(),
                                       [&](const key_info& k) { return k.name == key; });
        if (!known) {
            std::vector<std::string> names;
            names.reserve(info.keys.size());
            for (const auto& k : info.keys) names.push_back(k.name);
            throw std::invalid_argument(
                "paths: '" + spec.kind + "' does not accept key '" + key + "' (accepted: " +
                (names.empty() ? std::string("none") : join(names, ", ")) + ")");
        }
    }
    return info.factory(spec);
}

std::shared_ptr<const detection_path> registry::make(const std::string& spec_text) {
    return make(path_spec::parse(spec_text));
}

std::vector<std::shared_ptr<const detection_path>> registry::make_all(
    const std::vector<path_spec>& specs) {
    std::vector<std::shared_ptr<const detection_path>> paths;
    paths.reserve(specs.size());
    for (const auto& spec : specs) paths.push_back(make(spec));
    return paths;
}

std::shared_ptr<const solvers::solver> registry::make_solver(const std::string& spec_text) {
    const auto path = make(spec_text);
    auto solver = path->as_solver();
    if (solver == nullptr) {
        // Probe each kind with a default instance to render the capable
        // list; a kind whose factory rejects an empty spec (e.g. a
        // user-registered path with mandatory keys) is simply skipped so its
        // exception cannot mask this one.
        std::vector<std::string> capable;
        for (const auto& info : entries()) {
            try {
                if (registry::make(path_spec{info.kind, {}})->as_solver() != nullptr) {
                    capable.push_back(info.kind);
                }
            } catch (const std::exception&) {
                // not constructible from defaults — cannot recommend it
            }
        }
        throw std::invalid_argument("paths: '" + path->spec().kind +
                                    "' has no QUBO-solver form (solver-capable paths: " +
                                    join(capable, ", ") + ")");
    }
    return solver;
}

std::vector<std::shared_ptr<const solvers::solver>> registry::make_solvers(
    const std::vector<std::string>& spec_texts) {
    std::vector<std::shared_ptr<const solvers::solver>> solvers;
    solvers.reserve(spec_texts.size());
    for (const auto& text : spec_texts) solvers.push_back(make_solver(text));
    return solvers;
}

}  // namespace hcq::paths
