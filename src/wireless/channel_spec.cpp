#include "wireless/channel_spec.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/spec.h"
#include "wireless/fading.h"

namespace hcq::wireless {
namespace {

// The channels-layer vocabulary for the shared util::spec grammar: every
// historical error text ("channels: bad spec '<text>': ...") is reproduced
// verbatim.
const util::spec::grammar& channel_grammar() {
    static const util::spec::grammar g{"channels", "channel kind"};
    return g;
}

/// Accepted keys per kind; the source of truth for validation, canonical
/// to_string output, and error messages.
struct kind_info {
    const char* name;
    bool correlated;
    std::vector<const char*> keys;
};

const std::vector<kind_info>& kind_table() {
    static const std::vector<kind_info> table = {
        {"jakes", true, {"doppler_hz", "use_rate_hz", "sinusoids", "est_err", "snr_db"}},
        {"random-phase", false, {"est_err", "snr_db"}},
        {"rayleigh", false, {"est_err", "snr_db"}},
        {"watterson",
         true,
         {"taps", "spread_hz", "doppler_hz", "use_rate_hz", "sinusoids", "est_err", "snr_db"}},
    };
    return table;
}

std::string join(const std::vector<const char*>& items) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += items[i];
    }
    return out;
}

std::string join_kinds() {
    std::string out;
    const auto names = channel_spec::kinds();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0) out += ", ";
        out += names[i];
    }
    return out;
}

const kind_info& info_for(const std::string& kind, const std::string& text) {
    for (const auto& info : kind_table()) {
        if (kind == info.name) return info;
    }
    throw std::invalid_argument("channels: bad spec '" + text + "': unknown channel kind '" +
                                kind + "' (available: " + join_kinds() + ")");
}

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
    util::spec::fail(channel_grammar(), text, why);
}

double parse_double(const std::string& text, const std::string& key, const std::string& raw) {
    const auto value = util::spec::parse_double_value(raw);
    if (value.has_value() && std::isfinite(*value)) return *value;
    bad_spec(text, "bad value '" + raw + "' for key '" + key + "' (expected a finite number)");
}

std::size_t parse_size(const std::string& text, const std::string& key, const std::string& raw) {
    const auto value = util::spec::parse_size_value(raw);
    if (!value.has_value()) {
        bad_spec(text, "bad value '" + raw + "' for key '" + key +
                           "' (expected a non-negative integer)");
    }
    return *value;
}

std::string format_value(double value) {
    return util::spec::format_value(value);
}

/// i.i.d. process: reproduces draw_channel byte-for-byte from the per-use rng.
class iid_process final : public channel_process {
public:
    iid_process(channel_model model, std::size_t num_antennas, std::size_t num_users)
        : model_(model), num_antennas_(num_antennas), num_users_(num_users) {}

    [[nodiscard]] linalg::cmat at(double /*t*/, util::rng& use_rng) const override {
        return draw_channel(use_rng, model_, num_antennas_, num_users_);
    }
    void at_into(double /*t*/, util::rng& use_rng, linalg::cmat& out) const override {
        draw_channel_into(use_rng, model_, num_antennas_, num_users_, out);
    }
    [[nodiscard]] bool correlated() const noexcept override { return false; }
    [[nodiscard]] std::size_t num_antennas() const noexcept override { return num_antennas_; }
    [[nodiscard]] std::size_t num_users() const noexcept override { return num_users_; }

private:
    channel_model model_;
    std::size_t num_antennas_;
    std::size_t num_users_;
};

/// Correlated process: one frozen fading_tap set per matrix element.  With
/// K > 1 multipath taps per element the element gain is the 1/sqrt(K)-
/// weighted sum of K independent tap processes (flat composite — the
/// narrowband view of a Watterson channel), keeping E[|h|^2] = 1.
class correlated_process final : public channel_process {
public:
    correlated_process(const channel_spec& spec, std::size_t num_antennas,
                       std::size_t num_users, const util::rng& base)
        : num_antennas_(num_antennas), num_users_(num_users) {
        const bool watterson = spec.kind == "watterson";
        const std::size_t taps_per_element = watterson ? spec.taps : 1;
        const fading_spectrum spectrum =
            watterson ? fading_spectrum::gaussian : fading_spectrum::jakes;
        const double doppler_norm = watterson ? spec.spread_norm() : spec.doppler_norm();
        const double shift_norm = watterson ? spec.doppler_norm() : 0.0;
        taps_per_element_ = taps_per_element;
        tap_amplitude_ = 1.0 / std::sqrt(static_cast<double>(taps_per_element));
        taps_.reserve(num_antennas * num_users * taps_per_element);
        for (std::size_t r = 0; r < num_antennas; ++r) {
            for (std::size_t c = 0; c < num_users; ++c) {
                for (std::size_t k = 0; k < taps_per_element; ++k) {
                    // Stable per-(element, tap) stream id: independent taps
                    // whose identity does not depend on construction order.
                    util::rng tap_rng =
                        base.derive((r * num_users + c) * taps_per_element + k);
                    taps_.emplace_back(tap_rng, spectrum, doppler_norm, spec.sinusoids,
                                       shift_norm);
                }
            }
        }
        // Flatten the sinusoid banks into contiguous parallel arrays so the
        // hot evaluation reads straight-line memory instead of chasing one
        // heap vector per tap.  Order is preserved exactly — (element, tap,
        // sinusoid) — so the flattened sums accumulate in the identical
        // floating-point order as fading_tap::gain.
        sinusoids_per_tap_ = spec.sinusoids;
        sinusoid_amplitude_ = taps_.front().amplitude();
        const std::size_t total = taps_.size() * sinusoids_per_tap_;
        omega_.reserve(total);
        phase_i_.reserve(total);
        phase_q_.reserve(total);
        for (const auto& tap : taps_) {
            for (const auto& s : tap.sinusoids()) {
                omega_.push_back(s.omega);
                phase_i_.push_back(s.phase_i);
                phase_q_.push_back(s.phase_q);
            }
        }
    }

    [[nodiscard]] linalg::cmat at(double t, util::rng& use_rng) const override {
        linalg::cmat h;
        at_into(t, use_rng, h);
        return h;
    }

    void at_into(double t, util::rng& /*use_rng*/, linalg::cmat& h) const override {
        h.resize(num_antennas_, num_users_);
        const double* om = omega_.data();
        const double* pi = phase_i_.data();
        const double* pq = phase_q_.data();
        const std::size_t m = sinusoids_per_tap_;
        std::size_t idx = 0;
        for (std::size_t r = 0; r < num_antennas_; ++r) {
            for (std::size_t c = 0; c < num_users_; ++c) {
                linalg::cxd sum{};
                for (std::size_t k = 0; k < taps_per_element_; ++k) {
                    double gain_i = 0.0;
                    double gain_q = 0.0;
                    for (std::size_t s = 0; s < m; ++s) {
                        const double arg = om[idx + s] * t;
                        gain_i += std::cos(arg + pi[idx + s]);
                        gain_q += std::cos(arg + pq[idx + s]);
                    }
                    idx += m;
                    sum += linalg::cxd(sinusoid_amplitude_ * gain_i,
                                       sinusoid_amplitude_ * gain_q);
                }
                h(r, c) = tap_amplitude_ * sum;
            }
        }
    }

    [[nodiscard]] bool correlated() const noexcept override { return true; }
    [[nodiscard]] std::size_t num_antennas() const noexcept override { return num_antennas_; }
    [[nodiscard]] std::size_t num_users() const noexcept override { return num_users_; }

private:
    std::size_t num_antennas_;
    std::size_t num_users_;
    std::size_t taps_per_element_ = 1;
    double tap_amplitude_ = 1.0;
    std::vector<fading_tap> taps_;
    // Flattened (element, tap, sinusoid)-ordered sinusoid banks.
    std::size_t sinusoids_per_tap_ = 0;
    double sinusoid_amplitude_ = 0.0;
    std::vector<double> omega_;
    std::vector<double> phase_i_;
    std::vector<double> phase_q_;
};

}  // namespace

channel_spec channel_spec::parse(const std::string& text) {
    channel_spec spec;
    const kind_info* info = nullptr;
    // The shared grammar owns the kind / key=value / duplicate checks; the
    // hooks layer the channel-specific validation in at the exact points the
    // hand-rolled loop used to: unknown kind before any argument, unknown or
    // ill-valued keys in scan order.
    (void)util::spec::parse(
        channel_grammar(), text,
        [&](const std::string& key, const std::string& value) {
            const bool accepted =
                std::any_of(info->keys.begin(), info->keys.end(),
                            [&](const char* k) { return key == k; });
            if (!accepted) {
                bad_spec(text, "channel kind '" + spec.kind + "' does not accept key '" + key +
                                   "' (accepted: " + join(info->keys) + ")");
            }
            if (key == "doppler_hz") {
                spec.doppler_hz = parse_double(text, key, value);
            } else if (key == "spread_hz") {
                spec.spread_hz = parse_double(text, key, value);
            } else if (key == "taps") {
                spec.taps = parse_size(text, key, value);
            } else if (key == "use_rate_hz") {
                spec.use_rate_hz = parse_double(text, key, value);
            } else if (key == "sinusoids") {
                spec.sinusoids = parse_size(text, key, value);
            } else if (key == "est_err") {
                spec.est_err = parse_double(text, key, value);
            } else if (key == "snr_db") {
                spec.snr_db = parse_double(text, key, value);
            }
        },
        [&](const std::string& kind) {
            spec.kind = kind;
            info = &info_for(kind, text);
            if (kind == "watterson") spec.doppler_hz = 0.0;  // Doppler SHIFT default
        });

    // Range validation, each error naming the key and the accepted range.
    if (spec.est_err < 0.0) {
        bad_spec(text, "est_err must be >= 0 (got " + format_value(spec.est_err) + ")");
    }
    if (info->correlated) {
        if (!(spec.use_rate_hz > 0.0)) {
            bad_spec(text,
                     "use_rate_hz must be > 0 (got " + format_value(spec.use_rate_hz) + ")");
        }
        if (spec.sinusoids < 4 || spec.sinusoids > 4096) {
            bad_spec(text, "sinusoids must be in [4, 4096] (got " +
                               std::to_string(spec.sinusoids) + ")");
        }
        const double nyquist = spec.use_rate_hz / 2.0;
        if (spec.kind == "jakes") {
            if (!(spec.doppler_hz > 0.0) || spec.doppler_hz > nyquist) {
                bad_spec(text, "doppler_hz must be in (0, use_rate_hz/2] = (0, " +
                                   format_value(nyquist) + "] (got " +
                                   format_value(spec.doppler_hz) + ")");
            }
        } else {  // watterson
            if (spec.taps < 1 || spec.taps > 4) {
                bad_spec(text,
                         "taps must be in [1, 4] (got " + std::to_string(spec.taps) + ")");
            }
            if (!(spec.spread_hz > 0.0) || spec.spread_hz > nyquist) {
                bad_spec(text, "spread_hz must be in (0, use_rate_hz/2] = (0, " +
                                   format_value(nyquist) + "] (got " +
                                   format_value(spec.spread_hz) + ")");
            }
            if (spec.doppler_hz < 0.0 || spec.doppler_hz > nyquist) {
                bad_spec(text, "doppler_hz (Doppler shift) must be in [0, use_rate_hz/2] = [0, " +
                                   format_value(nyquist) + "] (got " +
                                   format_value(spec.doppler_hz) + ")");
            }
        }
    }
    return spec;
}

std::string channel_spec::to_string() const {
    const kind_info& info = info_for(kind, kind);
    std::string out = kind;
    char sep = ':';
    for (const char* key_cstr : info.keys) {
        const std::string key = key_cstr;
        std::string value;
        if (key == "doppler_hz") {
            value = format_value(doppler_hz);
        } else if (key == "spread_hz") {
            value = format_value(spread_hz);
        } else if (key == "taps") {
            value = std::to_string(taps);
        } else if (key == "use_rate_hz") {
            value = format_value(use_rate_hz);
        } else if (key == "sinusoids") {
            value = std::to_string(sinusoids);
        } else if (key == "est_err") {
            value = format_value(est_err);
        } else if (key == "snr_db") {
            if (!snr_db.has_value()) continue;  // only when set
            value = format_value(*snr_db);
        }
        out += sep;
        sep = ',';
        out += key;
        out += '=';
        out += value;
    }
    return out;
}

bool channel_spec::correlated() const noexcept {
    for (const auto& info : kind_table()) {
        if (kind == info.name) return info.correlated;
    }
    return false;
}

std::vector<std::string> channel_spec::kinds() {
    std::vector<std::string> names;
    names.reserve(kind_table().size());
    for (const auto& info : kind_table()) names.emplace_back(info.name);
    return names;
}

std::string channel_spec::help() {
    std::ostringstream os;
    os << "channel kinds (spec grammar: kind or kind:key=value,...):\n";
    os << "  random-phase   i.i.d. unit-gain random phase per use (paper 4.2)\n";
    os << "  rayleigh       i.i.d. CN(0,1) per use (the default)\n";
    os << "  jakes          time-correlated Clarke/Jakes flat fading\n";
    os << "  watterson      multipath composite of Gaussian-spread fading taps\n";
    os << "keys:\n";
    os << "  doppler_hz     jakes: max Doppler in (0, use_rate_hz/2] (default 50);\n";
    os << "                 watterson: Doppler shift in [0, use_rate_hz/2] (default 0)\n";
    os << "  spread_hz      watterson: Gaussian Doppler spread in (0, use_rate_hz/2]\n";
    os << "                 (default 1)\n";
    os << "  taps           watterson: multipath tap count in [1, 4] (default 2)\n";
    os << "  use_rate_hz    channel uses per second, maps Hz to per-use rates\n";
    os << "                 (default 1000)\n";
    os << "  sinusoids      sum-of-sinusoids order per tap, [4, 4096] (default 16)\n";
    os << "  est_err        CSI estimation-error variance >= 0: detectors see\n";
    os << "                 H_est = H_true + CN(0, est_err) (default 0 = perfect CSI)\n";
    os << "  snr_db         per-spec SNR override of the link-level --snr\n";
    return os.str();
}

std::unique_ptr<const channel_process> make_channel_process(const channel_spec& spec,
                                                            std::size_t num_antennas,
                                                            std::size_t num_users,
                                                            const util::rng& base) {
    if (num_antennas == 0 || num_users == 0) {
        throw std::invalid_argument("make_channel_process: empty dimensions");
    }
    // Re-validate so hand-built specs get the same range checks as parsed ones.
    const channel_spec validated = channel_spec::parse(spec.to_string());
    if (validated.kind == "rayleigh") {
        return std::make_unique<iid_process>(channel_model::rayleigh, num_antennas, num_users);
    }
    if (validated.kind == "random-phase") {
        return std::make_unique<iid_process>(channel_model::unit_gain_random_phase,
                                             num_antennas, num_users);
    }
    return std::make_unique<correlated_process>(validated, num_antennas, num_users, base);
}

}  // namespace hcq::wireless
