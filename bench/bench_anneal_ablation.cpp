// Emulator design-choice ablations (DESIGN.md "Hardware substitution").
//
// The annealer emulator substitutes the D-Wave 2000Q; its design parameters
// are not free lunch and this bench quantifies each one on the Figure-8
// workload (8-user 16-QAM, RA from GS + FA baseline at a fixed good s_p):
//   * temperature-map family (rational^2 vs rational^1 vs linear vs exp),
//   * sweeps-per-microsecond (dynamics granularity),
//   * freeze fraction (frozen-register threshold) — including freeze=0,
//     which silently turns every schedule into a greedy descent polisher
//     and destroys the s_p structure the paper measures,
//   * pause benefit: t_p = 1 us vs t_p = 0 (Section 4.2 cites the pause
//     literature [26, 29, 36, 52]).
#include <vector>

#include "bench_common.h"
#include "classical/greedy.h"
#include "core/device.h"
#include "core/experiment.h"
#include "core/sweep.h"
#include "metrics/stats.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace wl = hcq::wireless;

struct variant {
    std::string name;
    an::annealer_config config;
    double t_p = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Annealer-emulator ablation: temperature map, sweep rate, freezing, pause",
               "DESIGN.md hardware-substitution choices; paper Sections 4.1-4.3");

    const std::size_t instances = ctx.scaled(3);
    const std::size_t reads = ctx.scaled(250);

    std::vector<variant> variants;
    {
        variant v;
        v.name = "default (rational^2, 24 sw/us, freeze 0.002)";
        variants.push_back(v);

        v = variant{};
        v.name = "map rational^1";
        v.config.map = an::temperature_map(an::temperature_map_kind::rational, 3.0, 0.02, 1.0);
        variants.push_back(v);

        v = variant{};
        v.name = "map linear";
        v.config.map = an::temperature_map(an::temperature_map_kind::linear);
        variants.push_back(v);

        v = variant{};
        v.name = "map exponential(g=6)";
        v.config.map = an::temperature_map(an::temperature_map_kind::exponential, 6.0);
        variants.push_back(v);

        v = variant{};
        v.name = "sweeps/us = 8";
        v.config.sweeps_per_us = 8.0;
        variants.push_back(v);

        v = variant{};
        v.name = "sweeps/us = 96";
        v.config.sweeps_per_us = 96.0;
        variants.push_back(v);

        v = variant{};
        v.name = "freeze = 0 (descent allowed at s=1)";
        v.config.freeze_fraction = 0.0;
        variants.push_back(v);

        v = variant{};
        v.name = "freeze = 0.01 (early freeze)";
        v.config.freeze_fraction = 0.01;
        variants.push_back(v);

        v = variant{};
        v.name = "no pause (t_p = 0)";
        v.t_p = 0.0;
        variants.push_back(v);
    }

    hcq::util::table t({"variant", "RA(GS) p* @best sp", "best sp", "RA(GS) p* @sp=0.97",
                        "FA p* @best sp", "RA window contrast"});

    std::vector<std::array<double, 4>> results(variants.size());
    hcq::util::parallel_for(variants.size(), [&](std::size_t v) {
        const an::annealer_emulator device(variants[v].config);
        const double tp = variants[v].t_p;
        hcq::metrics::running_stats ra_best, fa_best, ra_high;
        double best_sp_acc = 0.0;
        for (std::size_t i = 0; i < instances; ++i) {
            hcq::util::rng rng(hcq::util::rng(ctx.seed + 3 * v).derive(i)());
            const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
            const auto gs = hcq::solvers::greedy_search().initialize(e.reduced.model, rng);
            double best_ra = 0.0;
            double best_fa = 0.0;
            double best_sp = 0.0;
            for (const double sp : {0.21, 0.29, 0.37, 0.45, 0.53, 0.61}) {
                const auto ra = hy::evaluate_schedule(device, e.reduced.model,
                                                      an::anneal_schedule::reverse(sp, tp),
                                                      reads, e.optimal_energy, rng, gs.bits);
                if (ra.p_star > best_ra) {
                    best_ra = ra.p_star;
                    best_sp = sp;
                }
                const auto fa = hy::evaluate_schedule(
                    device, e.reduced.model,
                    tp > 0.0 ? an::anneal_schedule::forward(1.0, sp, tp)
                             : an::anneal_schedule::forward_plain(1.0),
                    reads, e.optimal_energy, rng);
                best_fa = std::max(best_fa, fa.p_star);
            }
            const auto high = hy::evaluate_schedule(device, e.reduced.model,
                                                    an::anneal_schedule::reverse(0.97, tp),
                                                    reads, e.optimal_energy, rng, gs.bits);
            ra_best.add(best_ra);
            fa_best.add(best_fa);
            ra_high.add(high.p_star);
            best_sp_acc += best_sp;
        }
        results[v] = {ra_best.mean(), best_sp_acc / static_cast<double>(instances),
                      ra_high.mean(), fa_best.mean()};
    });

    for (std::size_t v = 0; v < variants.size(); ++v) {
        const double contrast =
            results[v][2] > 0.0 ? results[v][0] / results[v][2]
                                : (results[v][0] > 0.0 ? std::numeric_limits<double>::infinity()
                                                       : 1.0);
        t.add(variants[v].name, results[v][0], results[v][1], results[v][2], results[v][3],
              std::isinf(contrast) ? "inf" : hcq::util::format_double(contrast, 1));
    }
    ctx.emit(t);
    std::cout << "Design check: the default keeps a strong RA window contrast (success at\n"
                 "mid s_p, failure at s_p ~ 1) while holding FA weak, as on hardware.\n"
                 "freeze = 0 hands FA a free descent polish (its p* inflates vs default) —\n"
                 "the reason frozen-register semantics exist.  Linear/exponential maps lack\n"
                 "the hot-cold dynamic range at this temperature scale and kill RA outright.\n";
    return 0;
}
