// Single-spin-flip Metropolis dynamics on a QUBO — the kernel under both the
// plain simulated-annealing baseline and the annealer emulator (core/anneal).
//
// The engine keeps the current assignment, its energy, and all local fields
// incrementally, so one sweep costs O(N) per accepted flip and O(1) per
// rejected one (amortised O(N^2) per sweep worst case).
#ifndef HCQ_CLASSICAL_METROPOLIS_H
#define HCQ_CLASSICAL_METROPOLIS_H

#include <vector>

#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::solvers {

/// Incremental Metropolis state over one QUBO.
class metropolis_engine {
public:
    /// Binds to `q` (must outlive the engine) and sets the initial state.
    metropolis_engine(const qubo::qubo_model& q, qubo::bit_vector initial);

    /// Replaces the current state (recomputes energy and fields, O(N^2)).
    void set_state(qubo::bit_vector bits);

    /// One pass over all variables at inverse exploration strength
    /// `temperature` (>= 0; 0 means strictly-greedy descent moves only).
    /// Returns the number of accepted flips.
    std::size_t sweep(double temperature, util::rng& rng);

    /// Proposes a single flip of variable i (Metropolis rule); returns true
    /// if accepted.
    bool try_flip(std::size_t i, double temperature, util::rng& rng);

    /// Unconditionally flips variable i (used by move-always heuristics such
    /// as tabu search).
    void force_flip(std::size_t i);

    [[nodiscard]] const qubo::bit_vector& state() const noexcept { return bits_; }
    [[nodiscard]] double energy() const noexcept { return energy_; }
    [[nodiscard]] std::size_t num_variables() const noexcept { return bits_.size(); }

    /// Current local field of variable i (see qubo_model::local_field).
    [[nodiscard]] double field(std::size_t i) const { return fields_.at(i); }

private:
    void rebuild();

    const qubo::qubo_model* model_;
    qubo::bit_vector bits_;
    std::vector<double> fields_;
    double energy_ = 0.0;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_METROPOLIS_H
