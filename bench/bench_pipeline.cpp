// Figure 2 (vision) — "Example pipeline design of hybrid computational
// structure for successive wireless channel uses."
//
// The paper's figure is conceptual; this bench quantifies it: successive
// channel uses flow through a classical (GS) stage and a quantum (RA) stage.
// It sweeps the number of anneal reads per channel use and the offered load,
// reporting throughput, latency percentiles, and stage utilisation — the
// quantities that decide whether the structure meets a link-layer (ARQ)
// turnaround budget.  It also contrasts the pipelined structure against a
// strictly sequential (unpipelined) execution of the same stages.
#include <vector>

#include "bench_common.h"
#include "classical/greedy.h"
#include "core/experiment.h"
#include "core/schedule.h"
#include "pipeline/pipeline.h"
#include "util/rng.h"

namespace {

namespace an = hcq::anneal;
namespace hy = hcq::hybrid;
namespace pl = hcq::pipeline;
namespace wl = hcq::wireless;

}  // namespace

int main(int argc, char** argv) {
    const hcq::bench::context ctx(argc, argv);
    ctx.banner("Figure 2: pipelined classical-quantum processing of channel uses",
               "Kim et al., HotNets'20, Section 3 / Figure 2");

    const std::size_t num_jobs = ctx.scaled(2000);
    const double sp = ctx.flags.get_double("sp", 0.45);
    const double programming_us = ctx.flags.get_double("programming-us", 10.0);

    // Measure the classical stage on a real instance.
    hcq::util::rng rng(ctx.seed);
    const auto e = hy::make_paper_instance(rng, 8, wl::modulation::qam16);
    const auto gs = hcq::solvers::greedy_search().initialize(e.reduced.model, rng);
    const double classical_us = std::max(gs.elapsed_us, 1.0);
    const auto schedule = an::anneal_schedule::reverse(sp, 1.0);

    std::cout << "classical (GS) stage: " << hcq::util::format_double(classical_us, 2)
              << " us/use; quantum (RA s_p=" << sp
              << ") read: " << hcq::util::format_double(schedule.duration_us(), 2)
              << " us + " << programming_us << " us programming/use\n\n";

    hcq::util::table t({"reads/use", "arrival us", "throughput use/ms", "p50 us", "p99 us",
                        "util classical", "util quantum", "seq latency us", "pipe gain x"});

    for (const std::size_t reads : {10UL, 50UL, 100UL, 500UL}) {
        const double quantum_us =
            programming_us + schedule.duration_us() * static_cast<double>(reads);
        const double bottleneck = std::max(classical_us, quantum_us);
        for (const double load : {0.5, 0.9, 1.2}) {
            const double interarrival = bottleneck / load;
            hcq::util::rng sim_rng(ctx.seed + reads + static_cast<std::uint64_t>(load * 10));
            const auto stages =
                pl::make_hybrid_stages(classical_us, schedule.duration_us(), reads,
                                       programming_us);
            const auto result =
                pl::simulate(stages, num_jobs, {.interarrival_us = interarrival}, sim_rng);
            const double sequential_latency = classical_us + quantum_us;
            // Pipelining gain: sustained throughput vs running both stages
            // back-to-back per use on one resource.
            const double seq_throughput = 1.0 / sequential_latency;
            const double gain = result.throughput_per_us / seq_throughput;
            t.add(reads, hcq::util::format_double(interarrival, 1),
                  hcq::util::format_double(result.throughput_per_us * 1000.0, 2),
                  hcq::util::format_double(result.p50_latency_us, 1),
                  hcq::util::format_double(result.p99_latency_us, 1),
                  hcq::util::format_double(result.stage_utilization[0], 2),
                  hcq::util::format_double(result.stage_utilization[1], 2),
                  hcq::util::format_double(sequential_latency, 1),
                  hcq::util::format_double(gain, 2));
        }
    }
    ctx.emit(t);
    std::cout << "Shape check: at high load the pipeline sustains ~1/bottleneck throughput\n"
                 "(gain -> (classical+quantum)/bottleneck), while p99 latency blows up past\n"
                 "saturation (load 1.2) — the balancing/buffering challenge of Section 3.\n";
    return 0;
}
