// The detector-bank wire protocol — length-prefixed binary frames carrying
// detection requests and responses between the load-generator client
// (serve/client.h) and the TCP front end (serve/tcp_server.h).
//
// Frame format (all integers little-endian, doubles as IEEE-754 bit
// patterns):
//
//     [u32 payload_len][payload]           payload_len in (0, max_frame_bytes]
//
// Request payload (type 1):
//     u8 version, u8 type,
//     u64 tenant_id, u64 request_seq, u64 seed,
//     f64 deadline_us,
//     u32 num_uses, u32 num_users,
//     f64 snr_db, u8 noiseless, u8 want_soft,
//     str mod, str spec, str channel      (str = u32 length + bytes)
//
// Response payload (type 2):
//     u8 version, u8 type, u8 status,
//     u64 tenant_id, u64 request_seq      (echoed),
//     u32 queue_depth, u32 in_flight, f64 queue_wait_us,
//     str message,
//     u32 num_uses, u32 bits_per_use,
//     bytes packed_bits                    (ceil(num_uses*bits_per_use/8)),
//     f64 ml_cost[num_uses],
//     u8 has_soft,
//     f64 llrs[num_uses*bits_per_use]      (present iff has_soft == 1),
//     f64 synth_us, f64 qubo_us, f64 solve_us
//
// Version history: v2 added the soft-information feature flag — `want_soft`
// on the request and the has_soft/llrs fields on the response (the wire form
// of paths::detection_path::soft_output, canonical wireless/soft.h layout
// and sign convention).  Hard-decision clients simply leave want_soft 0 and
// the response carries no LLR bytes.
//
// Decoding is strictly bounds-checked and self-documenting in the registry
// style: a truncated buffer names the field it starved on, a bad
// version/type/status names the offending value and the accepted ones, and
// an oversized declared length is rejected before any allocation.  A decode
// failure is a protocol_error; the server answers status::bad_request with
// the message and then closes the connection (framing downstream of a
// malformed frame cannot be trusted).
//
// Determinism contract: the master seed of a served batch is
// request_seed(tenant_id, request_seq, seed) — a util::rng double
// derivation — so distinct tenants and retried sequence numbers get
// independent streams while any party (client, server, or an offline
// link-simulator run) can reproduce the exact batch.  serve/service.h
// turns that seed into the link-layer derived streams.
#ifndef HCQ_SERVE_PROTOCOL_H
#define HCQ_SERVE_PROTOCOL_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace hcq::serve {

/// Protocol version carried in every payload; bumped on any layout change
/// (v2: soft-information flag + LLR-bearing responses).
inline constexpr std::uint8_t protocol_version = 2;

/// Hard ceiling on one frame's payload, enforced before allocation on both
/// sides: a corrupt or hostile length prefix must not OOM the server.
inline constexpr std::uint32_t max_frame_bytes = 1u << 20;

/// Ceiling on channel uses per request (bounds per-request work and the
/// response size well under max_frame_bytes).
inline constexpr std::uint32_t max_batch_uses = 16384;

/// Ceiling on the LLR payload of one soft response (want_soft requests):
/// num_uses * bits_per_use * 8 bytes must fit here, keeping the framed
/// response under max_frame_bytes.  The server rejects larger soft batches
/// as bad-request with a message naming this bound.
inline constexpr std::uint32_t max_soft_payload_bytes = 1u << 19;

/// Response status.  busy / deadline are the 503-style admission-control
/// rejections: the request was well-formed but shed to protect the bank.
enum class status : std::uint8_t {
    ok = 0,           ///< batch served; bits / ml_cost / timings populated
    busy = 1,         ///< admission queue full (backpressure policy shed it)
    deadline = 2,     ///< queue wait already exceeded the request's deadline
    bad_request = 3,  ///< malformed frame or invalid spec/config
    error = 4,        ///< internal failure while serving
};

/// Canonical names: "ok", "busy", "deadline", "bad-request", "error".
[[nodiscard]] const char* to_string(status s) noexcept;

/// Decode-layer failure: truncated, oversized, or inconsistent payload.
class protocol_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// One detection request: a path spec plus the channel-use batch it should
/// be served against.  The batch is (num_uses, seed)-addressed — channel
/// uses are synthesized server-side from derived RNG streams, exactly like
/// link::run_link_simulation, so the request stays a few hundred bytes no
/// matter the batch size and the result is reproducible offline.
struct request {
    std::uint64_t tenant_id = 0;    ///< session owner (derives the RNG stream)
    std::uint64_t request_seq = 0;  ///< per-tenant sequence number (ditto)
    std::uint64_t seed = 1;         ///< client-chosen master seed component
    double deadline_us = 0.0;       ///< max queue wait before rejection; 0 = none
    std::uint32_t num_uses = 0;     ///< channel uses in the batch (1..max_batch_uses)
    std::uint32_t num_users = 4;    ///< transmit streams, N_r = N_t
    double snr_db = 16.0;           ///< per-antenna SNR when AWGN is on
    bool noiseless = false;         ///< paper Section-4.2 corpus setting
    /// Soft-information feature flag (protocol v2): when set the server runs
    /// the path's soft_output per use and the ok-response carries per-bit
    /// LLRs beside the hard bits.  Bounded by max_soft_payload_bytes.
    bool want_soft = false;
    std::string mod = "qam16";      ///< modulation name (wireless::parse_modulation)
    std::string spec;               ///< detection-path spec, e.g. "kbest:width=8"
    std::string channel;            ///< wireless channel spec; "" = i.i.d. rayleigh
};

/// One response.  On a non-ok status only the echo/admission fields and
/// `message` are meaningful; the batch payload is empty.
struct response {
    status state = status::ok;
    std::uint64_t tenant_id = 0;    ///< echoed from the request
    std::uint64_t request_seq = 0;  ///< echoed from the request
    std::uint32_t queue_depth = 0;  ///< admission queue length at decision time
    std::uint32_t in_flight = 0;    ///< worker-pool tasks executing at decision time
    double queue_wait_us = 0.0;     ///< how long the request waited before the decision
    std::string message;            ///< self-documenting rejection/error detail; "" on ok
    std::uint32_t num_uses = 0;
    std::uint32_t bits_per_use = 0;
    /// Detected bits, packed LSB-first: bit b of use u is
    /// bits[(u * bits_per_use + b) / 8] >> ((u * bits_per_use + b) % 8) & 1.
    std::vector<std::uint8_t> bits;
    std::vector<double> ml_cost;  ///< per-use ||y - H x_hat||^2
    /// Per-bit LLRs, use-major (llrs[u * bits_per_use + b] is bit b of use
    /// u), canonical wireless/soft.h layout and sign convention.  Present —
    /// size num_uses * bits_per_use — iff the request set want_soft; empty
    /// otherwise (has_soft == 0 on the wire).
    std::vector<double> llrs;
    double synth_us = 0.0;        ///< measured synthesis total across the batch
    double qubo_us = 0.0;         ///< measured QUBO-reduction total
    double solve_us = 0.0;        ///< measured solve total
};

/// Effective master seed of a served batch: util::rng(seed)
/// .derive(tenant_id).derive(request_seq).seed().  The golden loopback test
/// pins served batches against link::run_link_simulation run at this seed.
[[nodiscard]] std::uint64_t request_seed(std::uint64_t tenant_id, std::uint64_t request_seq,
                                         std::uint64_t seed);

/// Serialises a payload (no length prefix).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const request& req);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const response& resp);

/// Parses a payload (no length prefix).  Throws protocol_error naming the
/// offending field on truncation, a version/type mismatch, an oversized
/// string/batch, or trailing garbage.
[[nodiscard]] request decode_request(std::span<const std::uint8_t> payload);
[[nodiscard]] response decode_response(std::span<const std::uint8_t> payload);

/// Prepends the u32 length prefix.  Throws protocol_error when the payload
/// is empty or exceeds max_frame_bytes.
[[nodiscard]] std::vector<std::uint8_t> frame(std::vector<std::uint8_t> payload);

/// Validates a decoded length prefix.  Throws protocol_error on 0 or
/// > max_frame_bytes.
void check_frame_length(std::uint32_t payload_len);

/// Packs one use's bits into `packed` at bit offset `bit_base` (LSB-first).
void pack_bits(std::vector<std::uint8_t>& packed, std::size_t bit_base,
               std::span<const std::uint8_t> use_bits);

/// Unpacks `count` bits starting at `bit_base` into 0/1 bytes.
[[nodiscard]] std::vector<std::uint8_t> unpack_bits(std::span<const std::uint8_t> packed,
                                                    std::size_t bit_base, std::size_t count);

}  // namespace hcq::serve

#endif  // HCQ_SERVE_PROTOCOL_H
