#include "wireless/modulation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcq::wireless {

const std::vector<modulation>& all_modulations() {
    static const std::vector<modulation> mods{modulation::bpsk, modulation::qpsk,
                                              modulation::qam16, modulation::qam64};
    return mods;
}

std::string to_string(modulation mod) {
    switch (mod) {
        case modulation::bpsk: return "BPSK";
        case modulation::qpsk: return "QPSK";
        case modulation::qam16: return "16-QAM";
        case modulation::qam64: return "64-QAM";
    }
    return "?";
}

modulation parse_modulation(const std::string& name) {
    if (name == "BPSK" || name == "bpsk") return modulation::bpsk;
    if (name == "QPSK" || name == "qpsk") return modulation::qpsk;
    if (name == "16-QAM" || name == "qam16" || name == "16qam") return modulation::qam16;
    if (name == "64-QAM" || name == "qam64" || name == "64qam") return modulation::qam64;
    throw std::invalid_argument(
        "unknown modulation: '" + name +
        "' (expected one of: bpsk, qpsk, qam16/16qam, qam64/64qam, or the display names "
        "BPSK, QPSK, 16-QAM, 64-QAM)");
}

std::size_t bits_per_symbol(modulation mod) noexcept {
    switch (mod) {
        case modulation::bpsk: return 1;
        case modulation::qpsk: return 2;
        case modulation::qam16: return 4;
        case modulation::qam64: return 6;
    }
    return 0;
}

std::size_t bits_per_dimension(modulation mod) noexcept {
    switch (mod) {
        case modulation::bpsk: return 1;
        case modulation::qpsk: return 1;
        case modulation::qam16: return 2;
        case modulation::qam64: return 3;
    }
    return 0;
}

bool uses_quadrature(modulation mod) noexcept { return mod != modulation::bpsk; }

double mean_symbol_energy(modulation mod) noexcept {
    // Per dimension with k bits the lattice is odd integers up to 2^k - 1;
    // mean square is (4^k - 1) / 3.
    const auto k = static_cast<double>(bits_per_dimension(mod));
    const double per_dim = (std::pow(4.0, k) - 1.0) / 3.0;
    return uses_quadrature(mod) ? 2.0 * per_dim : per_dim;
}

double pam_amplitude(std::span<const std::uint8_t> bits) {
    if (bits.empty()) throw std::invalid_argument("pam_amplitude: no bits");
    double amp = 0.0;
    double weight = std::pow(2.0, static_cast<double>(bits.size() - 1));
    for (const auto b : bits) {
        if (b > 1) throw std::invalid_argument("pam_amplitude: bit not 0/1");
        amp += weight * (2.0 * b - 1.0);
        weight /= 2.0;
    }
    return amp;
}

std::vector<std::uint8_t> pam_bits(double value, std::size_t k) {
    if (k == 0 || k > 16) throw std::invalid_argument("pam_bits: bad dimension size");
    const double max_amp = std::pow(2.0, static_cast<double>(k)) - 1.0;
    // Slice to the nearest odd integer within the lattice.
    double sliced = 2.0 * std::round((value - 1.0) / 2.0) + 1.0;
    sliced = std::clamp(sliced, -max_amp, max_amp);
    // amplitude = 2*level - (2^k - 1) with level in [0, 2^k); invert.
    const auto level = static_cast<std::uint32_t>((sliced + max_amp) / 2.0);
    std::vector<std::uint8_t> bits(k);
    for (std::size_t j = 0; j < k; ++j) {
        bits[j] = static_cast<std::uint8_t>((level >> (k - 1 - j)) & 1U);
    }
    return bits;
}

cxd modulate_symbol(modulation mod, std::span<const std::uint8_t> bits) {
    const std::size_t need = bits_per_symbol(mod);
    if (bits.size() != need) {
        throw std::invalid_argument("modulate_symbol: expected " + std::to_string(need) +
                                    " bits, got " + std::to_string(bits.size()));
    }
    const std::size_t k = bits_per_dimension(mod);
    const double re = pam_amplitude(bits.subspan(0, k));
    const double im = uses_quadrature(mod) ? pam_amplitude(bits.subspan(k, k)) : 0.0;
    return {re, im};
}

std::vector<std::uint8_t> demodulate_symbol(modulation mod, cxd symbol) {
    const std::size_t k = bits_per_dimension(mod);
    std::vector<std::uint8_t> bits = pam_bits(symbol.real(), k);
    if (uses_quadrature(mod)) {
        const auto qbits = pam_bits(symbol.imag(), k);
        bits.insert(bits.end(), qbits.begin(), qbits.end());
    }
    return bits;
}

std::vector<cxd> constellation(modulation mod) {
    const std::size_t nbits = bits_per_symbol(mod);
    const std::size_t count = std::size_t{1} << nbits;
    std::vector<cxd> points;
    points.reserve(count);
    for (std::size_t pattern = 0; pattern < count; ++pattern) {
        std::vector<std::uint8_t> bits(nbits);
        for (std::size_t j = 0; j < nbits; ++j) {
            bits[j] = static_cast<std::uint8_t>((pattern >> (nbits - 1 - j)) & 1U);
        }
        points.push_back(modulate_symbol(mod, bits));
    }
    return points;
}

linalg::cvec modulate(modulation mod, std::span<const std::uint8_t> bits) {
    const std::size_t per = bits_per_symbol(mod);
    if (bits.size() % per != 0) {
        throw std::invalid_argument("modulate: bit count not a multiple of bits/symbol");
    }
    const std::size_t n = bits.size() / per;
    linalg::cvec out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = modulate_symbol(mod, bits.subspan(i * per, per));
    }
    return out;
}

std::vector<std::uint8_t> demodulate(modulation mod, const linalg::cvec& symbols) {
    std::vector<std::uint8_t> bits;
    bits.reserve(symbols.size() * bits_per_symbol(mod));
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        const auto sb = demodulate_symbol(mod, symbols[i]);
        bits.insert(bits.end(), sb.begin(), sb.end());
    }
    return bits;
}

void pam_bits_into(double value, std::size_t k, std::uint8_t* out) {
    if (k == 0 || k > 16) throw std::invalid_argument("pam_bits: bad dimension size");
    const double max_amp = std::pow(2.0, static_cast<double>(k)) - 1.0;
    double sliced = 2.0 * std::round((value - 1.0) / 2.0) + 1.0;
    sliced = std::clamp(sliced, -max_amp, max_amp);
    const auto level = static_cast<std::uint32_t>((sliced + max_amp) / 2.0);
    for (std::size_t j = 0; j < k; ++j) {
        out[j] = static_cast<std::uint8_t>((level >> (k - 1 - j)) & 1U);
    }
}

void demodulate_symbol_into(modulation mod, cxd symbol, std::uint8_t* out) {
    const std::size_t k = bits_per_dimension(mod);
    pam_bits_into(symbol.real(), k, out);
    if (uses_quadrature(mod)) pam_bits_into(symbol.imag(), k, out + k);
}

void modulate_into(modulation mod, std::span<const std::uint8_t> bits, linalg::cvec& out) {
    const std::size_t per = bits_per_symbol(mod);
    if (bits.size() % per != 0) {
        throw std::invalid_argument("modulate: bit count not a multiple of bits/symbol");
    }
    const std::size_t n = bits.size() / per;
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = modulate_symbol(mod, bits.subspan(i * per, per));
    }
}

void demodulate_into(modulation mod, const linalg::cvec& symbols, std::vector<std::uint8_t>& out) {
    const std::size_t per = bits_per_symbol(mod);
    out.resize(symbols.size() * per);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        demodulate_symbol_into(mod, symbols[i], out.data() + i * per);
    }
}

std::uint32_t gray_encode(std::uint32_t value) noexcept { return value ^ (value >> 1); }

std::uint32_t gray_decode(std::uint32_t value) noexcept {
    std::uint32_t out = value;
    for (std::uint32_t shift = 1; shift < 32; shift <<= 1) out ^= out >> shift;
    return out;
}

}  // namespace hcq::wireless
