// Collections of solver samples (bit string + energy), mirroring the
// "N_s anneal samples, keep the best" workflow of quantum heuristics
// (paper Section 2).
#ifndef HCQ_CLASSICAL_SAMPLE_SET_H
#define HCQ_CLASSICAL_SAMPLE_SET_H

#include <cstddef>
#include <span>
#include <vector>

#include "qubo/model.h"

namespace hcq::solvers {

/// One solver read.
struct sample {
    qubo::bit_vector bits;
    double energy = 0.0;
};

/// Append-only set of samples with the aggregations the paper's metrics use.
class sample_set {
public:
    sample_set() = default;

    void add(qubo::bit_vector bits, double energy);
    void reserve(std::size_t n) { samples_.reserve(n); }

    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] const sample& operator[](std::size_t i) const { return samples_[i]; }
    [[nodiscard]] const std::vector<sample>& all() const noexcept { return samples_; }

    /// Lowest-energy sample; throws std::logic_error when empty.
    [[nodiscard]] const sample& best() const;

    /// Mean sample energy; throws std::logic_error when empty.
    [[nodiscard]] double mean_energy() const;

    /// Number of samples with energy <= reference + tolerance (the
    /// ground-state hit count when `reference` is the optimum).
    [[nodiscard]] std::size_t count_at_or_below(double reference, double tolerance = 1e-6) const;

    /// Fraction of samples at or below the reference energy — the paper's
    /// per-anneal success probability p*.
    [[nodiscard]] double success_probability(double reference, double tolerance = 1e-6) const;

    /// All energies, in insertion order (for distribution plots).
    [[nodiscard]] std::vector<double> energies() const;

    /// Merges another set into this one.
    void merge(const sample_set& other);

private:
    std::vector<sample> samples_;
};

}  // namespace hcq::solvers

#endif  // HCQ_CLASSICAL_SAMPLE_SET_H
