#include "wireless/soft.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/decompose.h"

namespace hcq::wireless {

double clamp_llr(double llr) noexcept {
    if (std::isnan(llr)) return 0.0;
    return std::clamp(llr, -llr_cap, llr_cap);
}

double signed_llr(std::uint8_t bit, double magnitude) noexcept {
    return clamp_llr(bit == 0 ? magnitude : -magnitude);
}

std::vector<double> symbol_llrs(modulation mod, linalg::cxd equalized, double noise_variance) {
    std::vector<double> llrs(bits_per_symbol(mod));
    symbol_llrs_into(mod, equalized, noise_variance, llrs);
    return llrs;
}

void symbol_llrs_into(modulation mod, linalg::cxd equalized, double noise_variance,
                      std::span<double> out) {
    if (noise_variance <= 0.0) throw std::invalid_argument("symbol_llrs: noise_variance <= 0");
    const auto points = constellation(mod);
    const std::size_t bps = bits_per_symbol(mod);
    if (out.size() != bps) throw std::invalid_argument("symbol_llrs: wrong output length");
    double min0[8];  // bits_per_symbol is at most 6
    double min1[8];
    for (std::size_t b = 0; b < bps; ++b) {
        min0[b] = std::numeric_limits<double>::infinity();
        min1[b] = std::numeric_limits<double>::infinity();
    }
    for (std::size_t pattern = 0; pattern < points.size(); ++pattern) {
        const double dist = std::norm(equalized - points[pattern]);
        for (std::size_t b = 0; b < bps; ++b) {
            // `constellation` indexes by the natural-map pattern, MSB-first.
            const bool bit = ((pattern >> (bps - 1 - b)) & 1U) != 0;
            auto& best = bit ? min1[b] : min0[b];
            best = std::min(best, dist);
        }
    }
    for (std::size_t b = 0; b < bps; ++b) {
        out[b] = clamp_llr((min1[b] - min0[b]) / noise_variance);
    }
}

void equalized_llrs_into(const mimo_instance& instance, const linalg::cvec& equalized,
                         std::span<const double> stream_noise_variance,
                         std::vector<double>& out) {
    if (equalized.size() != instance.num_users ||
        stream_noise_variance.size() != instance.num_users) {
        throw std::invalid_argument("equalized_llrs: wrong per-user vector length");
    }
    const std::size_t bps = bits_per_symbol(instance.mod);
    out.resize(instance.num_bits());
    for (std::size_t u = 0; u < instance.num_users; ++u) {
        const double nv = std::max(stream_noise_variance[u], llr_noise_floor * 1e-9);
        symbol_llrs_into(instance.mod, equalized[u], nv,
                         std::span<double>(out).subspan(u * bps, bps));
    }
}

void flip_recost_llrs_into(const mimo_instance& instance, std::span<const std::uint8_t> bits,
                           std::vector<double>& out) {
    if (bits.size() != instance.num_bits()) {
        throw std::invalid_argument("flip_recost_llrs: wrong bit-string length");
    }
    const double nv = std::max(instance.noise_variance, llr_noise_floor);
    // Scratch word reused per flip; cost of the detected word computed once.
    std::vector<std::uint8_t> word(bits.begin(), bits.end());
    linalg::cvec symbols;
    linalg::cvec residual;
    const double base_cost = instance.ml_cost_bits(word, symbols, residual);
    out.resize(bits.size());
    for (std::size_t b = 0; b < bits.size(); ++b) {
        word[b] ^= 1U;
        const double flip_cost = instance.ml_cost_bits(word, symbols, residual);
        word[b] ^= 1U;
        // LLR = (cost of the b=1 word - cost of the b=0 word) / nv: when the
        // detected bit is 0 the base word IS the b=0 word, and vice versa.
        const double gap = (flip_cost - base_cost) / nv;
        out[b] = signed_llr(bits[b], gap);
    }
}

std::vector<double> zf_soft_bits(const mimo_instance& instance, double noise_floor) {
    if (noise_floor <= 0.0) throw std::invalid_argument("zf_soft_bits: noise_floor <= 0");
    const auto soft = linalg::least_squares(instance.h, instance.y);

    // Per-stream post-ZF noise enhancement: sigma_u^2 = sigma^2 [(H^H H)^-1]_uu.
    const auto gram = instance.h.hermitian() * instance.h;
    const auto gram_inv = linalg::inverse(gram);
    const double sigma_sq = std::max(instance.noise_variance, noise_floor);

    std::vector<double> stream_nv(instance.num_users);
    for (std::size_t u = 0; u < instance.num_users; ++u) {
        stream_nv[u] = sigma_sq * std::max(gram_inv(u, u).real(), 1e-12);
    }
    std::vector<double> llrs;
    equalized_llrs_into(instance, soft, stream_nv, llrs);
    return llrs;
}

std::vector<std::uint8_t> harden(const std::vector<double>& llrs) {
    std::vector<std::uint8_t> bits;
    harden_into(llrs, bits);
    return bits;
}

void harden_into(std::span<const double> llrs, std::vector<std::uint8_t>& out) {
    out.resize(llrs.size());
    for (std::size_t b = 0; b < llrs.size(); ++b) out[b] = clamp_llr(llrs[b]) >= 0.0 ? 0 : 1;
}

void accumulate_llrs(std::span<const double> in, std::span<double> out) {
    if (in.size() != out.size()) {
        throw std::invalid_argument("accumulate_llrs: length mismatch");
    }
    for (std::size_t b = 0; b < in.size(); ++b) {
        out[b] = clamp_llr(out[b] + clamp_llr(in[b]));
    }
}

}  // namespace hcq::wireless
