// Fixed-width binned histograms for the solution-quality distributions of
// Figure 6 and the Delta-E_IS binning of Figures 7 and 8.
#ifndef HCQ_METRICS_HISTOGRAM_H
#define HCQ_METRICS_HISTOGRAM_H

#include <cstddef>
#include <vector>

namespace hcq::metrics {

/// Histogram over [lo, hi) with uniform bins plus an overflow bin; values
/// below `lo` clamp into the first bin (the distributions this library bins
/// are non-negative by construction).
class histogram {
public:
    histogram(double lo, double hi, std::size_t num_bins);

    void add(double value);

    [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size() - 1; }
    /// Count of bin b (b == num_bins() addresses the overflow bin).
    [[nodiscard]] std::size_t count(std::size_t bin) const;
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    [[nodiscard]] std::size_t overflow() const { return counts_.back(); }

    /// Fraction of all samples landing in bin b.
    [[nodiscard]] double fraction(std::size_t bin) const;
    /// Fraction of samples at or below the upper edge of bin b (CDF).
    [[nodiscard]] double cumulative_fraction(std::size_t bin) const;

    [[nodiscard]] double bin_lower(std::size_t bin) const;
    [[nodiscard]] double bin_center(std::size_t bin) const;
    [[nodiscard]] double bin_width() const noexcept { return width_; }

    /// Bin index a value would land in (overflow index if >= hi).
    [[nodiscard]] std::size_t bin_index(double value) const;

private:
    double lo_;
    double width_;
    std::size_t total_ = 0;
    std::vector<std::size_t> counts_;  // num_bins + overflow
};

}  // namespace hcq::metrics

#endif  // HCQ_METRICS_HISTOGRAM_H
