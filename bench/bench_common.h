// Shared scaffolding for the figure-reproduction benches.
//
// Every bench accepts:
//   --scale=smoke|quick|full   sample-count preset (default quick; full
//                              approaches the paper's counts)
//   --seed=<n>                 master seed (default 7)
//   --csv                      emit CSV instead of aligned tables
// plus bench-specific flags documented in each binary's banner.
#ifndef HCQ_BENCH_BENCH_COMMON_H
#define HCQ_BENCH_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace hcq::bench {

/// Parsed common options.
struct context {
    util::flag_set flags;
    util::bench_scale scale = util::bench_scale::quick;
    std::uint64_t seed = 7;
    bool csv = false;

    context(int argc, const char* const argv[]) : flags(argc, argv) {
        scale = util::parse_scale(flags);
        seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
        csv = flags.get_bool("csv", false);
    }

    /// Scales a base count by the preset factor (>= 1).
    [[nodiscard]] std::size_t scaled(std::size_t base) const {
        const double f = util::scale_factor(scale);
        const double v = std::ceil(static_cast<double>(base) * f);
        return static_cast<std::size_t>(std::max(1.0, v));
    }

    /// Prints the bench banner.
    void banner(const std::string& title, const std::string& paper_ref) const {
        std::cout << "== " << title << " ==\n"
                  << "reproduces: " << paper_ref << "\n"
                  << "scale: " << util::to_string(scale) << "  seed: " << seed << "\n\n";
    }

    /// Emits a table in the selected format.
    void emit(const util::table& t) const {
        if (csv) {
            t.print_csv(std::cout);
        } else {
            t.print(std::cout);
        }
        std::cout << "\n";
    }
};

}  // namespace hcq::bench

#endif  // HCQ_BENCH_BENCH_COMMON_H
