// Tests for the classical detectors: exactness of the sphere decoder against
// brute force, linear detector behaviour, K-best/FCSD quality ordering.
#include <gtest/gtest.h>

#include <memory>

#include "detect/fcsd.h"
#include "detect/kbest.h"
#include "detect/linear.h"
#include "detect/real_model.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "qubo/brute_force.h"
#include "util/rng.h"
#include "wireless/mimo.h"

namespace {

namespace wl = hcq::wireless;
namespace dt = hcq::detect;
using wl::modulation;

wl::mimo_instance noisy_instance(hcq::util::rng& rng, std::size_t users, modulation mod,
                                 double noise_variance, std::size_t extra_antennas = 0) {
    wl::mimo_config config;
    config.mod = mod;
    config.num_users = users;
    config.num_antennas = users + extra_antennas;
    config.channel = wl::channel_model::rayleigh;
    config.noise_variance = noise_variance;
    return wl::synthesize(rng, config);
}

TEST(RealModel, DimensionsPerModulation) {
    hcq::util::rng rng(1);
    const auto bpsk = wl::noiseless_paper_instance(rng, 5, modulation::bpsk);
    EXPECT_EQ(dt::make_real_model(bpsk).dims, 5u);
    const auto qam = wl::noiseless_paper_instance(rng, 5, modulation::qam16);
    const auto model = dt::make_real_model(qam);
    EXPECT_EQ(model.dims, 10u);
    EXPECT_EQ(model.alphabet.size(), 4u);
    EXPECT_DOUBLE_EQ(model.alphabet.front(), -3.0);
    EXPECT_DOUBLE_EQ(model.alphabet.back(), 3.0);
}

TEST(RealModel, SliceAmplitude) {
    const std::vector<double> alphabet{-3.0, -1.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(dt::slice_amplitude(0.2, alphabet), 1.0);
    EXPECT_DOUBLE_EQ(dt::slice_amplitude(-7.0, alphabet), -3.0);
    EXPECT_DOUBLE_EQ(dt::slice_amplitude(2.1, alphabet), 3.0);
    EXPECT_THROW((void)dt::slice_amplitude(0.0, {}), std::invalid_argument);
}

TEST(RealModel, AssembleValidatesSize) {
    hcq::util::rng rng(2);
    const auto inst = wl::noiseless_paper_instance(rng, 3, modulation::qpsk);
    EXPECT_THROW((void)dt::assemble_result(inst, std::vector<double>(3, 1.0), 0),
                 std::invalid_argument);
}

class NoiselessRecovery : public ::testing::TestWithParam<modulation> {};

TEST_P(NoiselessRecovery, ZfRecoversTruth) {
    hcq::util::rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
    const auto inst = wl::noiseless_paper_instance(rng, 6, GetParam());
    const auto result = dt::zf_detector().detect(inst);
    EXPECT_EQ(result.bits, inst.tx_bits);
    EXPECT_NEAR(result.ml_cost, 0.0, 1e-9);
    EXPECT_EQ(result.nodes_visited, 0u);
}

TEST_P(NoiselessRecovery, MmseRecoversTruth) {
    hcq::util::rng rng(static_cast<std::uint64_t>(GetParam()) + 20);
    const auto inst = wl::noiseless_paper_instance(rng, 6, GetParam());
    const auto result = dt::mmse_detector().detect(inst);
    EXPECT_EQ(result.bits, inst.tx_bits);
}

TEST_P(NoiselessRecovery, SphereRecoversTruth) {
    hcq::util::rng rng(static_cast<std::uint64_t>(GetParam()) + 30);
    const auto inst = wl::noiseless_paper_instance(rng, 6, GetParam());
    const auto result = dt::sphere_detector().detect(inst);
    EXPECT_EQ(result.bits, inst.tx_bits);
    EXPECT_NEAR(result.ml_cost, 0.0, 1e-9);
    EXPECT_GT(result.nodes_visited, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, NoiselessRecovery,
                         ::testing::Values(modulation::bpsk, modulation::qpsk,
                                           modulation::qam16, modulation::qam64));

class SphereExactness : public ::testing::TestWithParam<modulation> {};

TEST_P(SphereExactness, MatchesBruteForceOnNoisyInstances) {
    const modulation mod = GetParam();
    hcq::util::rng rng(static_cast<std::uint64_t>(mod) * 7 + 100);
    // Keep bit counts <= 12 for brute force.
    const std::size_t users = 12 / wl::bits_per_symbol(mod);
    for (int trial = 0; trial < 5; ++trial) {
        const auto inst = noisy_instance(rng, users, mod, 2.0);
        const auto mq = dt::ml_to_qubo(inst);
        const auto exact = hcq::qubo::brute_force_minimize(mq.model);
        const auto sd = dt::sphere_detector().detect(inst);
        EXPECT_NEAR(sd.ml_cost, exact.best_energy + mq.model.offset(), 1e-7)
            << wl::to_string(mod) << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModulations, SphereExactness,
                         ::testing::Values(modulation::bpsk, modulation::qpsk,
                                           modulation::qam16, modulation::qam64));

TEST(Sphere, HandlesRectangularChannels) {
    hcq::util::rng rng(200);
    const auto inst = noisy_instance(rng, 3, modulation::qam16, 1.0, /*extra antennas*/ 3);
    const auto sd = dt::sphere_detector().detect(inst);
    const auto mq = dt::ml_to_qubo(inst);
    const auto exact = hcq::qubo::brute_force_minimize(mq.model);
    EXPECT_NEAR(sd.ml_cost, exact.best_energy + mq.model.offset(), 1e-7);
}

TEST(Sphere, SmallRadiusFallsBackGracefully) {
    hcq::util::rng rng(201);
    const auto inst = noisy_instance(rng, 2, modulation::qpsk, 1.0);
    const auto result = dt::sphere_detector(1e-12).detect(inst);
    EXPECT_EQ(result.bits.size(), inst.num_bits());  // still produces a solution
}

TEST(KBest, WideBeamEqualsSphere) {
    hcq::util::rng rng(202);
    for (int trial = 0; trial < 4; ++trial) {
        const auto inst = noisy_instance(rng, 3, modulation::qpsk, 1.5);
        // Beam covering the whole tree at these sizes.
        const auto kb = dt::kbest_detector(4096).detect(inst);
        const auto sd = dt::sphere_detector().detect(inst);
        EXPECT_NEAR(kb.ml_cost, sd.ml_cost, 1e-8);
    }
}

TEST(KBest, QualityImprovesWithBeamWidth) {
    hcq::util::rng rng(203);
    double narrow_total = 0.0;
    double wide_total = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto inst = noisy_instance(rng, 4, modulation::qam16, 4.0);
        narrow_total += dt::kbest_detector(1).detect(inst).ml_cost;
        wide_total += dt::kbest_detector(16).detect(inst).ml_cost;
    }
    EXPECT_LE(wide_total, narrow_total + 1e-9);
}

TEST(KBest, Validation) {
    EXPECT_THROW(dt::kbest_detector(0), std::invalid_argument);
    EXPECT_EQ(dt::kbest_detector(8).name(), "KB8");
    EXPECT_EQ(dt::kbest_detector(8).beam_width(), 8u);
}

TEST(Fcsd, FullEnumerationIsExact) {
    hcq::util::rng rng(204);
    const auto inst = noisy_instance(rng, 2, modulation::qpsk, 1.0);
    const auto model_dims = dt::make_real_model(inst).dims;
    const auto fc = dt::fcsd_detector(model_dims).detect(inst);
    const auto sd = dt::sphere_detector().detect(inst);
    EXPECT_NEAR(fc.ml_cost, sd.ml_cost, 1e-8);
}

TEST(Fcsd, MoreLevelsNeverWorse) {
    hcq::util::rng rng(205);
    double babai_total = 0.0;
    double one_total = 0.0;
    double two_total = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto inst = noisy_instance(rng, 4, modulation::qam16, 4.0);
        babai_total += dt::fcsd_detector(0).detect(inst).ml_cost;
        one_total += dt::fcsd_detector(1).detect(inst).ml_cost;
        two_total += dt::fcsd_detector(2).detect(inst).ml_cost;
    }
    EXPECT_LE(one_total, babai_total + 1e-9);
    EXPECT_LE(two_total, one_total + 1e-9);
}

TEST(Fcsd, NameAndAccessors) {
    EXPECT_EQ(dt::fcsd_detector(2).name(), "FCSD2");
    EXPECT_EQ(dt::fcsd_detector(2).full_levels(), 2u);
}

TEST(Detectors, ReportedCostMatchesSymbols) {
    hcq::util::rng rng(206);
    const auto inst = noisy_instance(rng, 4, modulation::qam16, 2.0);
    std::vector<std::unique_ptr<dt::detector>> detectors;
    detectors.push_back(std::make_unique<dt::zf_detector>());
    detectors.push_back(std::make_unique<dt::mmse_detector>());
    detectors.push_back(std::make_unique<dt::sphere_detector>());
    detectors.push_back(std::make_unique<dt::kbest_detector>(4));
    detectors.push_back(std::make_unique<dt::fcsd_detector>(1));
    for (const auto& det : detectors) {
        const auto result = det->detect(inst);
        EXPECT_NEAR(result.ml_cost, inst.ml_cost(result.symbols), 1e-9) << det->name();
        EXPECT_EQ(result.bits, wl::demodulate(inst.mod, result.symbols)) << det->name();
        EXPECT_GE(result.elapsed_us, 0.0) << det->name();
    }
}

TEST(Detectors, MlOrderingHolds) {
    // SD (exact) <= FCSD/KB <= worst-case linear, in ML cost, on average.
    hcq::util::rng rng(207);
    double sd_total = 0.0;
    double kb_total = 0.0;
    double zf_total = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
        const auto inst = noisy_instance(rng, 4, modulation::qam16, 6.0);
        sd_total += dt::sphere_detector().detect(inst).ml_cost;
        kb_total += dt::kbest_detector(8).detect(inst).ml_cost;
        zf_total += dt::zf_detector().detect(inst).ml_cost;
    }
    EXPECT_LE(sd_total, kb_total + 1e-9);
    EXPECT_LE(sd_total, zf_total + 1e-9);
}

TEST(Detectors, MmseBeatsZfUnderHeavyNoise) {
    hcq::util::rng rng(208);
    double zf_errors = 0.0;
    double mmse_errors = 0.0;
    for (int trial = 0; trial < 30; ++trial) {
        const auto inst = noisy_instance(rng, 6, modulation::qpsk, 8.0);
        const auto zf = dt::zf_detector().detect(inst);
        const auto mmse = dt::mmse_detector().detect(inst);
        for (std::size_t b = 0; b < inst.num_bits(); ++b) {
            zf_errors += zf.bits[b] != inst.tx_bits[b] ? 1.0 : 0.0;
            mmse_errors += mmse.bits[b] != inst.tx_bits[b] ? 1.0 : 0.0;
        }
    }
    EXPECT_LE(mmse_errors, zf_errors + 5.0);  // regularisation should not hurt
}

}  // namespace
