// Time-correlated fading tap processes — sum-of-sinusoids models whose gain
// is a CLOSED-FORM function of time.
//
// The library's determinism contract (bit-identical statistics at any thread
// count and stream_block size) rules out the textbook recurrence-filter
// fading simulators: a process advanced one IIR step per channel use would
// force the stream back to sequential evaluation.  A sum-of-sinusoids
// process sidesteps that entirely: all randomness is frozen at construction
// (per-sinusoid arrival angles and phases drawn once from a derived
// util::rng stream), after which the complex tap gain at time t is the pure
// function
//
//     g(t) = (1/sqrt(M)) * sum_m [ cos(w_m t + phi_m) + j cos(w_m t + psi_m) ]
//
// so any worker can evaluate any channel use independently, in any order.
// E[|g|^2] = 1 (unit mean-square gain, like channel_model::rayleigh), and
// by the CLT over the M sinusoids the envelope |g| is Rayleigh.
//
// Two Doppler spectra, selected by the frequency law of w_m:
//
//  * jakes     w_m = 2*pi*f_d*cos(alpha_m), alpha_m ~ U[0, 2pi) — the
//              Clarke/Jakes ring spectrum of isotropic scattering.  Ensemble
//              autocorrelation E[g(t) g*(t+tau)] = J0(2*pi*f_d*tau)
//              (jakes_autocorrelation below), the classic Bessel curve whose
//              slow first lobe is what makes low-Doppler error BURSTS.
//  * gaussian  w_m = 2*pi*(f_shift + sigma*z_m), z_m ~ N(0, 1) — the
//              Watterson HF tap spectrum: a Gaussian Doppler spread sigma
//              around a Doppler shift f_shift.  Autocorrelation magnitude
//              exp(-2*pi^2*sigma^2*tau^2) (gaussian_autocorrelation).
//
// Frequencies are normalised per channel use (f_d = doppler_hz /
// use_rate_hz); time is measured in channel uses throughout.  The
// statistical test harness (tests/channel_stats_test.cpp) pins the envelope
// distribution, both autocorrelation curves, and the low-Doppler burst
// behaviour to the analytic forms above.
#ifndef HCQ_WIRELESS_FADING_H
#define HCQ_WIRELESS_FADING_H

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace hcq::wireless {

/// Doppler spectrum of a fading tap (see the header comment).
enum class fading_spectrum {
    jakes,     ///< Clarke/Jakes ring spectrum; autocorrelation J0(2 pi fd tau)
    gaussian,  ///< Watterson Gaussian spread; autocorrelation exp(-2 pi^2 s^2 tau^2)
};

/// One frozen sinusoid of a tap process.
struct fading_sinusoid {
    double omega = 0.0;    ///< angular frequency, radians per channel use
    double phase_i = 0.0;  ///< in-phase component phase
    double phase_q = 0.0;  ///< quadrature component phase
};

/// One unit-mean-square-gain fading tap: an immutable bag of sinusoids whose
/// complex gain is evaluated closed-form at any time (in channel uses).
/// Construction consumes 3*M draws from `rng` (angle/frequency + two
/// phases per sinusoid); evaluation is const and thread-safe.
class fading_tap {
public:
    /// Draws the tap's frozen parameters.  `doppler_norm` is the maximum
    /// Doppler (jakes) or the Gaussian spread sigma (gaussian), normalised
    /// per channel use; `shift_norm` adds a deterministic Doppler shift
    /// (gaussian spectrum only — the Watterson magneto-ionic component
    /// offset; ignored for jakes).  Throws std::invalid_argument on
    /// num_sinusoids == 0 or a negative doppler_norm.
    fading_tap(util::rng& rng, fading_spectrum spectrum, double doppler_norm,
               std::size_t num_sinusoids, double shift_norm = 0.0);

    /// Complex tap gain at time `t` (channel uses).  Pure function of t.
    [[nodiscard]] linalg::cxd gain(double t) const noexcept;

    [[nodiscard]] std::size_t num_sinusoids() const noexcept { return sinusoids_.size(); }

    /// The frozen sinusoid bank — lets hot evaluation paths flatten taps
    /// into contiguous storage instead of calling gain() per tap.
    [[nodiscard]] const std::vector<fading_sinusoid>& sinusoids() const noexcept {
        return sinusoids_;
    }

    /// 1/sqrt(M) normalisation applied to the sinusoid sums.
    [[nodiscard]] double amplitude() const noexcept { return amplitude_; }

private:
    std::vector<fading_sinusoid> sinusoids_;
    double amplitude_ = 0.0;  ///< 1/sqrt(M): normalises E[|g|^2] to 1
};

/// J0-shaped ensemble autocorrelation of a jakes tap at lag `tau` (channel
/// uses): J0(2*pi*doppler_norm*tau).  This is the analytic curve the
/// statistical harness matches measured autocorrelations against.
[[nodiscard]] double jakes_autocorrelation(double doppler_norm, double tau);

/// Ensemble autocorrelation magnitude of a gaussian-spectrum tap:
/// exp(-2*pi^2*spread_norm^2*tau^2).
[[nodiscard]] double gaussian_autocorrelation(double spread_norm, double tau);

/// Bessel function of the first kind, order zero (Abramowitz & Stegun
/// 9.4.1/9.4.3 polynomial approximations, |error| < 2e-7) — local so the
/// statistical tests do not depend on std::cyl_bessel_j being present in
/// the standard library implementation.
[[nodiscard]] double bessel_j0(double x);

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_FADING_H
