// Tests for the detection-path spec grammar and factory registry: parse /
// to_string round-trips, the CLI list grammar, registry construction with
// self-documenting errors, spec round-trips through make, duplicate-
// registration rejection, solver-form bridging, and user extension paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "detect/transform.h"
#include "link/link_sim.h"
#include "paths/registry.h"
#include "qubo/generator.h"
#include "wireless/mimo.h"

namespace {

namespace pt = hcq::paths;

std::string thrown_message(const std::function<void()>& fn) {
    try {
        fn();
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected std::invalid_argument";
    return {};
}

TEST(PathSpec, ParsesKindAndOrderedArgs) {
    const auto bare = pt::path_spec::parse("zf");
    EXPECT_EQ(bare.kind, "zf");
    EXPECT_TRUE(bare.args.empty());
    EXPECT_EQ(bare.to_string(), "zf");

    const auto spec = pt::path_spec::parse("gsra:reads=80,sp=0.29,pause_us=1");
    EXPECT_EQ(spec.kind, "gsra");
    ASSERT_EQ(spec.args.size(), 3u);
    EXPECT_EQ(spec.args[0], (std::pair<std::string, std::string>{"reads", "80"}));
    EXPECT_EQ(spec.args[1], (std::pair<std::string, std::string>{"sp", "0.29"}));
    EXPECT_EQ(spec.args[2], (std::pair<std::string, std::string>{"pause_us", "1"}));
    EXPECT_EQ(spec.to_string(), "gsra:reads=80,sp=0.29,pause_us=1");
    ASSERT_NE(spec.find("sp"), nullptr);
    EXPECT_EQ(*spec.find("sp"), "0.29");
    EXPECT_EQ(spec.find("absent"), nullptr);
}

TEST(PathSpec, RejectsMalformedText) {
    EXPECT_THROW((void)pt::path_spec::parse(""), std::invalid_argument);
    EXPECT_THROW((void)pt::path_spec::parse(":width=4"), std::invalid_argument);
    EXPECT_THROW((void)pt::path_spec::parse("kbest:"), std::invalid_argument);
    EXPECT_THROW((void)pt::path_spec::parse("kbest:width"), std::invalid_argument);
    EXPECT_THROW((void)pt::path_spec::parse("kbest:=4"), std::invalid_argument);
    EXPECT_THROW((void)pt::path_spec::parse("kbest:width="), std::invalid_argument);
    EXPECT_THROW((void)pt::path_spec::parse("width=4"), std::invalid_argument);
    // Duplicate keys are a silent-misconfiguration hazard, so they are loud.
    EXPECT_THROW((void)pt::path_spec::parse("sa:reads=4,reads=400"), std::invalid_argument);
}

TEST(PathSpec, ListGrammarSplitsPathsAndAttachesArgs) {
    const auto simple = pt::parse_spec_list("zf,kbest:width=16,gsra");
    ASSERT_EQ(simple.size(), 3u);
    EXPECT_EQ(simple[0].to_string(), "zf");
    EXPECT_EQ(simple[1].to_string(), "kbest:width=16");
    EXPECT_EQ(simple[2].to_string(), "gsra");

    // A bare key=value continues the previous spec; a new kind:key=value
    // (':' before '=') starts a new one.
    const auto mixed = pt::parse_spec_list("sa:reads=4,sweeps=40,gsra:reads=10,zf");
    ASSERT_EQ(mixed.size(), 3u);
    EXPECT_EQ(mixed[0].to_string(), "sa:reads=4,sweeps=40");
    EXPECT_EQ(mixed[1].to_string(), "gsra:reads=10");
    EXPECT_EQ(mixed[2].to_string(), "zf");

    // A key=value after a bare kind opens that kind's argument list.
    const auto opened = pt::parse_spec_list("kbest,width=16,zf");
    ASSERT_EQ(opened.size(), 2u);
    EXPECT_EQ(opened[0].to_string(), "kbest:width=16");
    EXPECT_EQ(opened[1].to_string(), "zf");

    EXPECT_TRUE(pt::parse_spec_list("").empty());
    EXPECT_TRUE(pt::parse_spec_list(",,").empty());
}

TEST(Registry, ListsBuiltinsSorted) {
    const auto kinds = pt::registry::available();
    EXPECT_TRUE(std::is_sorted(kinds.begin(), kinds.end()));
    for (const char* kind :
         {"zf", "mmse", "kbest", "sphere", "sic", "fcsd", "sa", "tabu", "pt", "gsra", "kxra"}) {
        EXPECT_TRUE(pt::registry::is_registered(kind)) << kind;
    }
    EXPECT_FALSE(pt::registry::is_registered("warp-drive"));
}

TEST(Registry, HelpListsKindsAndKeys) {
    const auto help = pt::registry::help();
    EXPECT_NE(help.find("kbest"), std::string::npos);
    EXPECT_NE(help.find("width"), std::string::npos);
    EXPECT_NE(help.find("gsra"), std::string::npos);
    EXPECT_NE(help.find("pause_us"), std::string::npos);
}

TEST(Registry, UnknownKindErrorListsAvailablePaths) {
    const auto message =
        thrown_message([] { (void)pt::registry::make("warp-drive"); });
    EXPECT_NE(message.find("warp-drive"), std::string::npos);
    EXPECT_NE(message.find("available"), std::string::npos);
    EXPECT_NE(message.find("zf"), std::string::npos);
    EXPECT_NE(message.find("gsra"), std::string::npos);
}

TEST(Registry, UnknownKeyErrorListsAcceptedKeys) {
    const auto message =
        thrown_message([] { (void)pt::registry::make("kbest:breadth=16"); });
    EXPECT_NE(message.find("breadth"), std::string::npos);
    EXPECT_NE(message.find("accepted"), std::string::npos);
    EXPECT_NE(message.find("width"), std::string::npos);

    // A path with no keys says so rather than listing nothing.
    const auto none = thrown_message([] { (void)pt::registry::make("zf:width=4"); });
    EXPECT_NE(none.find("none"), std::string::npos);
}

TEST(Registry, BadValueErrorNamesKeyAndExpectation) {
    const auto not_a_number =
        thrown_message([] { (void)pt::registry::make("kbest:width=wide"); });
    EXPECT_NE(not_a_number.find("width"), std::string::npos);
    EXPECT_NE(not_a_number.find("wide"), std::string::npos);
    EXPECT_NE(not_a_number.find("positive integer"), std::string::npos);

    EXPECT_THROW((void)pt::registry::make("kbest:width=0"), std::invalid_argument);
    EXPECT_THROW((void)pt::registry::make("gsra:reads=-3"), std::invalid_argument);
    const auto bad_double = thrown_message([] { (void)pt::registry::make("gsra:sp=high"); });
    EXPECT_NE(bad_double.find("sp"), std::string::npos);
    EXPECT_NE(bad_double.find("number"), std::string::npos);
}

TEST(Registry, SpecRoundTripsThroughMakeForEveryBuiltin) {
    // The fixed builtin list, not available(): other tests in this binary
    // legitimately add process-global test-only kinds.
    for (const std::string kind :
         {"zf", "mmse", "kbest", "sphere", "sic", "fcsd", "sa", "tabu", "pt", "gsra", "kxra"}) {
        SCOPED_TRACE(kind);
        const auto path = pt::registry::make(kind);
        const auto canonical = path->spec();
        EXPECT_EQ(canonical.kind, kind);
        // Canonical spec -> make -> identical name and canonical spec.
        const auto rebuilt = pt::registry::make(canonical.to_string());
        EXPECT_EQ(rebuilt->name(), path->name());
        EXPECT_EQ(rebuilt->spec().to_string(), canonical.to_string());
        EXPECT_EQ(rebuilt->needs_qubo(), path->needs_qubo());
        EXPECT_EQ(rebuilt->stage_names(), path->stage_names());
        EXPECT_EQ(rebuilt->stage_servers(), path->stage_servers());
    }
}

TEST(Registry, KxraDeclaresItsDeviceBank) {
    // kxra is gsra served by K round-robin annealer devices (paper §5): the
    // quantum stage reports K servers, everything else matches gsra.
    const auto kxra = pt::registry::make("kxra:k=4,reads=10");
    EXPECT_EQ(kxra->spec().to_string(), "kxra:k=4,reads=10,sp=0.29,pause_us=1,init=gs");
    EXPECT_EQ(kxra->name(), "GS+RAx4");
    EXPECT_TRUE(kxra->needs_qubo());
    EXPECT_EQ(kxra->stage_names(), (std::vector<std::string>{"classical", "quantum"}));
    EXPECT_EQ(kxra->stage_servers(), (std::vector<std::size_t>{1, 4}));
    EXPECT_NE(kxra->as_solver(), nullptr);  // bridges into parallel_runner sweeps
    // Defaults: k=2.
    EXPECT_EQ(pt::registry::make("kxra")->stage_servers(), (std::vector<std::size_t>{1, 2}));
    EXPECT_THROW((void)pt::registry::make("kxra:k=0"), std::invalid_argument);

    // Every other builtin defaults to one device per stage.
    const auto gsra = pt::registry::make("gsra");
    EXPECT_EQ(gsra->stage_servers(), (std::vector<std::size_t>{1, 1}));
    EXPECT_EQ(pt::registry::make("zf")->stage_servers(), (std::vector<std::size_t>{1}));
}

TEST(Registry, NonDefaultSpecRoundTrips) {
    const auto path = pt::registry::make("gsra:reads=40,sp=0.35,pause_us=2");
    EXPECT_EQ(path->spec().to_string(), "gsra:reads=40,sp=0.35,pause_us=2,init=gs");
    const auto kbest = pt::registry::make("kbest:width=16");
    EXPECT_EQ(kbest->spec().to_string(), "kbest:width=16");
    // Defaults canonicalise to explicit keys, so "kbest" == "kbest:width=8".
    EXPECT_EQ(pt::registry::make("kbest")->spec().to_string(), "kbest:width=8");
}

TEST(Registry, DuplicateRegistrationIsRejected) {
    const auto factory = [](const pt::path_spec&) -> std::shared_ptr<const pt::detection_path> {
        return pt::registry::make("zf");
    };
    // The registry is process-global, so guard the first registration to
    // keep the test idempotent under --gtest_repeat / --gtest_shuffle.
    if (!pt::registry::is_registered("dup-probe")) {
        pt::registry::register_path(
            {.kind = "dup-probe", .summary = "test-only", .keys = {}, .factory = factory});
    }
    EXPECT_THROW(pt::registry::register_path({.kind = "dup-probe",
                                              .summary = "again",
                                              .keys = {},
                                              .factory = factory}),
                 std::invalid_argument);
    // Built-ins are protected the same way.
    EXPECT_THROW(
        pt::registry::register_path({.kind = "zf", .summary = "", .keys = {}, .factory = factory}),
        std::invalid_argument);
    // And the registration surface validates its inputs.
    EXPECT_THROW(
        pt::registry::register_path({.kind = "", .summary = "", .keys = {}, .factory = factory}),
        std::invalid_argument);
    EXPECT_THROW(pt::registry::register_path(
                     {.kind = "no-factory", .summary = "", .keys = {}, .factory = {}}),
                 std::invalid_argument);
}

/// A user-defined path: always emits the all-zero word.  Exercises the
/// extension recipe from docs/ARCHITECTURE.md end to end.
class all_zero_path final : public pt::detection_path {
public:
    [[nodiscard]] pt::path_result run(const pt::path_context& ctx) const override {
        pt::path_result out;
        out.bits.assign(ctx.instance.num_bits(), 0);
        out.ml_cost = ctx.instance.ml_cost_bits(out.bits);
        out.stages = {{"detect", 0.0}};
        return out;
    }
    [[nodiscard]] std::string name() const override { return "Zero"; }
    [[nodiscard]] pt::path_spec spec() const override { return {"zero", {}}; }
    [[nodiscard]] std::vector<std::string> stage_names() const override { return {"detect"}; }
};

TEST(Registry, UserRegisteredPathRunsThroughTheLinkSimulator) {
    if (!pt::registry::is_registered("zero")) {
        pt::registry::register_path(
            {.kind = "zero",
             .summary = "all-zero reference word (test-only)",
             .keys = {},
             .factory = [](const pt::path_spec&) -> std::shared_ptr<const pt::detection_path> {
                 return std::make_shared<const all_zero_path>();
             }});
    }
    hcq::link::link_config config;
    config.num_uses = 6;
    config.num_users = 2;
    config.mod = hcq::wireless::modulation::qpsk;
    config.paths = pt::parse_spec_list("zero,zf");
    config.seed = 5;
    const auto report = hcq::link::run_link_simulation(config);
    const auto& zero = report.path("zero");
    EXPECT_EQ(zero.name, "Zero");
    EXPECT_EQ(zero.stage_names(), (std::vector<std::string>{"synth", "detect"}));
    EXPECT_GT(zero.ber.errors(), 0u);  // all-zero is a terrible detector
}

TEST(Registry, SolverFormsBridgeIntoSweeps) {
    for (const char* spec : {"sa:reads=2,sweeps=10", "tabu:iters=20", "pt:rounds=4",
                             "gsra:reads=4", "kxra:k=2,reads=4"}) {
        SCOPED_TRACE(spec);
        const auto solver = pt::registry::make_solver(spec);
        ASSERT_NE(solver, nullptr);
        hcq::util::rng rng(11);
        const auto q = hcq::qubo::random_qubo(rng, 8, 1.0);
        hcq::util::rng solve_rng(12);
        const auto samples = solver->solve(q, solve_rng);
        EXPECT_GT(samples.size(), 0u);
    }

    const auto message = thrown_message([] { (void)pt::registry::make_solver("zf"); });
    EXPECT_NE(message.find("no QUBO-solver form"), std::string::npos);
    EXPECT_NE(message.find("sa"), std::string::npos);
    EXPECT_NE(message.find("gsra"), std::string::npos);
}

TEST(Registry, SolverOutlivesThePathThatMadeIt) {
    // The gsra path owns its initialiser and device through shared_ptr; the
    // solver it hands out must keep them alive after the path is gone.
    std::shared_ptr<const hcq::solvers::solver> solver;
    {
        const auto path = pt::registry::make("gsra:reads=4,sp=0.45");
        solver = path->as_solver();
    }
    hcq::util::rng rng(21);
    const auto q = hcq::qubo::random_qubo(rng, 6, 1.0);
    hcq::util::rng solve_rng(22);
    const auto samples = solver->solve(q, solve_rng);
    EXPECT_EQ(samples.size(), 5u);  // initial candidate + 4 reads
    EXPECT_EQ(solver->name(), "GS+RA");
}

TEST(Registry, ConventionalPathsHaveNoSolverFormAndNeedNoQubo) {
    for (const char* kind : {"zf", "mmse", "kbest", "sphere", "sic", "fcsd"}) {
        SCOPED_TRACE(kind);
        const auto path = pt::registry::make(kind);
        EXPECT_FALSE(path->needs_qubo());
        EXPECT_EQ(path->as_solver(), nullptr);
    }
    for (const char* kind : {"sa", "tabu", "pt", "gsra", "kxra"}) {
        SCOPED_TRACE(kind);
        const auto path = pt::registry::make(kind);
        EXPECT_TRUE(path->needs_qubo());
        EXPECT_NE(path->as_solver(), nullptr);
    }
}

TEST(Registry, GsraInitialiserKey) {
    // The paper's §5 initialiser choice as a spec key.  Unset canonicalises
    // to the default greedy search — the golden link statistics pin that
    // this is byte-for-byte the historical behaviour.
    const auto default_spec = pt::registry::make("gsra")->spec();
    const auto* default_init = default_spec.find("init");
    ASSERT_NE(default_init, nullptr);
    EXPECT_EQ(*default_init, "gs");
    EXPECT_EQ(pt::registry::make("gsra")->name(), "GS+RA");
    EXPECT_EQ(pt::registry::make("gsra:init=gs")->spec().to_string(),
              pt::registry::make("gsra")->spec().to_string());

    EXPECT_EQ(pt::registry::make("gsra:init=tabu")->name(), "Tabu+RA");
    EXPECT_EQ(pt::registry::make("gsra:init=kbest")->name(), "KB+RA");
    EXPECT_EQ(pt::registry::make("kxra:init=kbest")->name(), "KB+RAx2");
    EXPECT_EQ(pt::registry::make("kxra:k=3,init=tabu")->name(), "Tabu+RAx3");

    // Initialiser variants keep the hybrid's two-stage shape.
    const auto kb = pt::registry::make("gsra:init=kbest");
    EXPECT_TRUE(kb->needs_qubo());
    EXPECT_EQ(kb->stage_names(), (std::vector<std::string>{"classical", "quantum"}));

    const auto bad = thrown_message([] { (void)pt::registry::make("gsra:init=warp"); });
    EXPECT_NE(bad.find("init"), std::string::npos);
    EXPECT_NE(bad.find("tabu"), std::string::npos);
    EXPECT_NE(bad.find("kbest"), std::string::npos);

    // The registry help advertises the key.
    EXPECT_NE(pt::registry::help().find("init"), std::string::npos);
}

TEST(Registry, GsraInitialiserSolverForms) {
    // tabu keeps a pure-QUBO solver form for sweeps; kbest consumes the
    // MIMO instance and therefore has none.
    EXPECT_EQ(pt::registry::make_solver("gsra:init=tabu")->name(), "Tabu+RA");
    EXPECT_EQ(pt::registry::make("gsra:init=kbest")->as_solver(), nullptr);
    EXPECT_THROW((void)pt::registry::make_solver("gsra:init=kbest"), std::invalid_argument);
}

TEST(Registry, QuboPathRejectsMissingReduction) {
    hcq::util::rng rng(31);
    const auto instance =
        hcq::wireless::noiseless_paper_instance(rng, 2, hcq::wireless::modulation::qpsk);
    const auto path = pt::registry::make("sa:reads=1,sweeps=5");
    hcq::util::rng solve_rng(32);
    const pt::path_context ctx{instance, nullptr, solve_rng};
    EXPECT_THROW((void)path->run(ctx), std::invalid_argument);
}

}  // namespace
