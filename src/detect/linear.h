// Linear detectors: zero-forcing and MMSE.
//
// Section 5 of the paper singles out linear solvers ("e.g., zero-forcing") as
// likely-better reverse-annealing initialisers than greedy search at the cost
// of a matrix inversion.  Both detectors equalise then slice each stream to
// the nearest constellation point.
#ifndef HCQ_DETECT_LINEAR_H
#define HCQ_DETECT_LINEAR_H

#include "detect/detector.h"

namespace hcq::detect {

/// Zero-forcing: x_hat = slice(H^+ y) with H^+ the least-squares pseudo-inverse.
class zf_detector final : public detector {
public:
    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    [[nodiscard]] std::string name() const override { return "ZF"; }
};

/// Linear MMSE: x_hat = slice((H^H H + (sigma^2/E_s) I)^-1 H^H y).
/// With sigma^2 == 0 this degenerates to zero-forcing.
class mmse_detector final : public detector {
public:
    [[nodiscard]] detection_result detect(const wireless::mimo_instance& instance) const override;
    [[nodiscard]] std::string name() const override { return "MMSE"; }
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_LINEAR_H
