// Synthetic QUBO/Ising instance generators for tests and solver baselines.
#ifndef HCQ_QUBO_GENERATOR_H
#define HCQ_QUBO_GENERATOR_H

#include "qubo/ising.h"
#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::qubo {

/// Random dense QUBO: each coefficient (including linear) is nonzero with
/// probability `density` and drawn uniformly from [lo, hi].
[[nodiscard]] qubo_model random_qubo(util::rng& rng, std::size_t n, double density = 1.0,
                                     double lo = -1.0, double hi = 1.0);

/// Sherrington-Kirkpatrick spin glass: J_ij ~ N(0, 1/sqrt(n)), h = 0.
[[nodiscard]] ising_model sk_spin_glass(util::rng& rng, std::size_t n);

/// Ferromagnetic chain with field: classic easy instance whose ground state
/// is all-ones — useful for solver smoke tests.
[[nodiscard]] ising_model ferromagnetic_chain(std::size_t n, double coupling = -1.0,
                                              double field = -0.5);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_GENERATOR_H
