// Pipelined classical-quantum computation structures (paper Figure 2).
//
// Successive wireless channel uses arrive as a stream of jobs; each job
// passes through a fixed sequence of processing stages (e.g. a classical
// greedy-search unit, then a quantum reverse-annealing unit).  While the
// quantum unit processes channel use N, the classical unit may already work
// on N+1 — exactly the overlap the figure depicts.  The simulator is a
// tandem queue:
//     start[k][j] = max(done[k-1][j], free_k),
//     done[k][j]  = start[k][j] + service_k(j).
//
// Modelling semantics, explicitly:
//   * Stage buffers are bounded by sim_options::buffer_capacity (waiting
//     slots per stage; unbounded_capacity restores the legacy
//     grow-without-bound behaviour).  A full buffer applies the selected
//     backpressure policy: `block` stalls the upstream stage (and, at the
//     first stage, delays admission of offered arrivals) until a slot
//     frees; `drop_oldest` evicts the longest-waiting queued job in favour
//     of the newcomer; `drop_newest` discards the arriving job.  Capacity 0
//     is a configuration error (a stage could never accept work) and
//     throws — see simulate().
//   * Jobs traverse the pipeline strictly in stream order (in-order
//     delivery between stages); a stage with S servers dispatches jobs
//     round-robin (job n of the stage's served stream goes to server
//     n mod S) — the paper's §5 "K annealer devices serving one stream"
//     lever made literal.
//   * `stage_utilization[k]` is busy time / (makespan x servers) — the
//     fraction of the stage's total service capacity spent serving,
//     measured against the LAST departure time.  Early stages that finish
//     and then idle while the tail drains report lower utilisation than an
//     in-isolation measurement would.
//   * Latency statistics cover completed jobs only; dropped jobs count into
//     drop_rate/stage_drops and into queue-occupancy time while queued, but
//     have no latency.
//
// The simulator reports the link-layer quantities of interest: sustained
// throughput, per-channel-use latency percentiles (the ARQ turnaround
// budget), drop rates, stage utilisation, and queue occupancy.  For
// million-job streaming runs set record_latencies = false: percentiles then
// come from a fixed-memory metrics::latency_digest (~0.4% relative error)
// instead of an O(jobs) vector.  Service models may be synthetic (constant /
// lognormal) or measured traces recorded from the real solver code paths by
// the end-to-end link simulator (link/link_sim.h).
//
// Concurrency contract: simulate()/simulate_closed_loop() are
// SINGLE-THREADED event simulators over virtual time — stage "parallelism"
// is modelled in the event equations, not executed on threads.  There are
// deliberately no locks and no thread-safety annotations here; a mutex in
// this layer would signal a design error.  Callers may run many simulations
// concurrently on disjoint inputs (the link layer does); see
// docs/ARCHITECTURE.md, "The determinism contract as enforceable rules".
#ifndef HCQ_PIPELINE_PIPELINE_H
#define HCQ_PIPELINE_PIPELINE_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/table.h"

namespace hcq::pipeline {

/// One pipeline stage: a name, a per-job service-time model, and a server
/// count (parallel identical devices fed round-robin, default 1).
class stage {
public:
    using service_model = std::function<double(std::size_t job_index, util::rng& rng)>;

    /// Throws std::invalid_argument on a null service model or zero servers.
    stage(std::string name, service_model service, std::size_t num_servers = 1);

    /// Deterministic service time.
    [[nodiscard]] static stage constant(std::string name, double service_us);

    /// Lognormal-jittered service time: exp(N(log median, sigma)).
    [[nodiscard]] static stage lognormal(std::string name, double median_us, double sigma);

    /// Replays a measured per-job service-time trace (e.g. the wall times the
    /// end-to-end link simulator records for each stage).  Job j is served in
    /// trace[j % trace.size()] us, so a short trace cycles over a longer run.
    /// Throws std::invalid_argument on an empty trace or any negative /
    /// non-finite entry.
    [[nodiscard]] static stage from_trace(std::string name, std::vector<double> trace_us);

    /// Copy of this stage backed by `num_servers` parallel servers (e.g. the
    /// K devices of a kxra detection path).  Throws on zero.
    [[nodiscard]] stage with_servers(std::size_t num_servers) const;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t servers() const noexcept { return num_servers_; }
    [[nodiscard]] double service_us(std::size_t job_index, util::rng& rng) const;

private:
    std::string name_;
    service_model service_;
    std::size_t num_servers_ = 1;
};

/// Arrival process for channel uses.
struct arrival_process {
    double interarrival_us = 10.0;  ///< mean spacing between channel uses
    bool poisson = false;           ///< exponential spacing instead of fixed
};

/// What a stage does when a job arrives at a full buffer.
enum class backpressure {
    block,        ///< stall the upstream stage until a slot frees (no drops)
    drop_oldest,  ///< evict the longest-waiting queued job for the newcomer
    drop_newest,  ///< discard the arriving job
};

/// Canonical names: "block", "drop-oldest", "drop-newest".
[[nodiscard]] const char* to_string(backpressure policy) noexcept;
/// Parses the canonical names; throws std::invalid_argument listing them.
[[nodiscard]] backpressure parse_backpressure(const std::string& text);

/// Sentinel capacity restoring the legacy unbounded-buffer behaviour.
inline constexpr std::size_t unbounded_capacity = static_cast<std::size_t>(-1);

/// Simulation knobs beyond the stage list and arrival process.
struct sim_options {
    /// Waiting slots in front of every stage (jobs in service not counted).
    /// unbounded_capacity disables backpressure entirely; 0 throws.
    std::size_t buffer_capacity = unbounded_capacity;
    backpressure policy = backpressure::block;
    /// Keep the per-job latencies_us vector (O(jobs) memory) and compute
    /// exact percentiles from it.  When false, percentiles come from a
    /// fixed-memory log-binned digest instead (~0.4% relative error) and
    /// latencies_us stays empty — the million-job streaming mode.
    bool record_latencies = true;
};

/// Aggregate simulation outcome.
struct simulation_result {
    std::size_t num_jobs = 0;                ///< offered jobs (arrivals)
    std::size_t jobs_completed = 0;          ///< jobs that left the last stage
    std::size_t jobs_dropped = 0;            ///< offered - completed
    double drop_rate = 0.0;                  ///< dropped / offered
    double makespan_us = 0.0;                ///< last departure time
    double throughput_per_us = 0.0;          ///< completed jobs / makespan
    double mean_latency_us = 0.0;            ///< arrival -> final departure
    double p50_latency_us = 0.0;
    double p99_latency_us = 0.0;
    double max_latency_us = 0.0;
    std::vector<double> stage_utilization;   ///< busy / (makespan x servers)
    std::vector<double> mean_queue_wait_us;  ///< buffer wait per completed job
    std::vector<double> mean_queue_len;      ///< time-averaged buffer occupancy
    std::vector<std::size_t> max_queue_len;  ///< peak buffer occupancy
    std::vector<std::size_t> stage_drops;    ///< jobs dropped at each buffer
    /// Per-completed-job latencies in completion order; empty when
    /// record_latencies is false.
    std::vector<double> latencies_us;
};

/// Runs `num_jobs` channel uses through the stages.  Throws
/// std::invalid_argument on an empty stage list, non-positive parameters, or
/// a zero buffer capacity (a stage could never accept work — pass
/// unbounded_capacity for the legacy no-backpressure model).
[[nodiscard]] simulation_result simulate(const std::vector<stage>& stages,
                                         std::size_t num_jobs, const arrival_process& arrivals,
                                         util::rng& rng, const sim_options& options = {});

/// Renders a simulation_result as a two-column metric/value util::table
/// (throughput, drop rate, latency percentiles, then per-stage utilisation,
/// queue wait, occupancy, and drops).  `stage_names` labels the per-stage
/// rows and must either match the per-stage vector sizes or be empty (stages
/// are then numbered).  This is the one place result formatting lives —
/// examples and benches print through it instead of ad-hoc streaming.
[[nodiscard]] util::table summary_table(const simulation_result& result,
                                        const std::vector<std::string>& stage_names = {});

/// Convenience builder for the paper's two-stage hybrid: a classical
/// initialiser stage followed by a quantum annealer stage whose service time
/// is reads x schedule duration plus a per-job programming overhead.
/// `quantum_devices` replicates the annealer stage (round-robin dispatch).
[[nodiscard]] std::vector<stage> make_hybrid_stages(double classical_us,
                                                    double schedule_duration_us,
                                                    std::size_t reads_per_use,
                                                    double programming_us = 0.0,
                                                    std::size_t quantum_devices = 1);

// ---------------------------------------------------------------------------
// Closed-loop (feedback) simulation — the ARQ re-entry extension.
//
// The open-loop simulate() above is a feed-forward tandem queue: a job
// leaves the last stage and is gone.  The link layer's ARQ loop needs the
// opposite: a frame whose attempt *failed* (wrong bits, or an answer
// arriving past the retransmission deadline) re-enters the FIRST stage as a
// retransmission and competes with fresh arrivals for the same bounded
// buffers — which is when `drop_oldest` becomes the natural shedding policy.
//
// simulate_closed_loop() is an event-driven core (the feed-forward
// recurrences cannot express a cycle) with the same modelling vocabulary:
// bounded per-stage waiting buffers, block / drop-oldest / drop-newest
// backpressure, round-robin multi-server stages (job n of a stage's served
// stream goes to server n mod S), strict in-order hand-off between stages.
// Semantics that differ from the feed-forward cores, explicitly:
//   * A server is released when its job HANDS OFF to the next stage (or
//     exits), not when service ends — under `block` a full downstream
//     buffer therefore holds the server exactly like hold_last_server();
//     under the drop policies hand-off is immediate, so the two coincide
//     except while a faster sibling server waits for in-order delivery.
//   * Offered arrivals that meet a full first buffer under `block` wait in
//     an unbounded entrance queue (the source never blocks), exactly like
//     the open-loop core; fed-back retransmissions join the same entrance
//     discipline in re-entry order.  Under the drop policies a fed-back
//     retransmission meeting a full buffer is dropped like any arrival —
//     a lost frame, counted in stage_drops.
//   * simulation_result::num_jobs counts every INJECTION (offered frames
//     plus retransmissions); latency statistics are per completed
//     traversal, measured from that attempt's injection time.
struct completion {
    std::size_t frame = 0;       ///< offered-frame index
    std::size_t attempt = 0;     ///< 0 = first transmission
    double offered_us = 0.0;     ///< arrival time of attempt 0
    double injected_us = 0.0;    ///< entry time of THIS attempt into the chain
    double done_us = 0.0;        ///< exit time from the last stage

    /// Replayed end-to-end latency of this attempt (the ARQ deadline view).
    [[nodiscard]] double latency_us() const noexcept { return done_us - injected_us; }
};

/// Feedback decision, invoked once per completed traversal in exit order:
/// return true to re-enqueue the frame at stage 0 (attempt + 1) at time
/// done_us.  The callback must eventually return false for every frame
/// (e.g. by capping attempts) or the simulation never drains.
using feedback_fn = std::function<bool(const completion&)>;

/// Runs `num_frames` offered jobs through the stages with feedback re-entry.
/// Validation matches simulate(); `feedback` may be empty (open loop).
[[nodiscard]] simulation_result simulate_closed_loop(const std::vector<stage>& stages,
                                                     std::size_t num_frames,
                                                     const arrival_process& arrivals,
                                                     util::rng& rng, const sim_options& options,
                                                     const feedback_fn& feedback);

}  // namespace hcq::pipeline

#endif  // HCQ_PIPELINE_PIPELINE_H
