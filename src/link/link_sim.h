// End-to-end streaming link simulator (hcq::link) — the full
// channel-use -> QUBO -> solve -> BER path of the paper, run as ONE system.
//
// Where the figure benches study solvers on frozen corpora and
// pipeline/pipeline.h studies queueing on synthetic service models, this
// layer closes the loop: it generates successive wireless channel uses
// (wireless/channel.h + wireless/mimo.h + modulation), reduces each to QUBO
// form through the QuAMax transform (detect/transform.h) when any path needs
// it, and dispatches the solves across util::thread_pool side by side.
//
// Detection paths are *not* hard-coded: each entry of link_config::paths is
// a paths::path_spec ("zf", "kbest:width=16", "gsra:reads=80,sp=0.29", ...)
// resolved through paths::registry, so any registered path — conventional
// detector, classical QUBO heuristic, or hybrid classical-quantum structure
// — can ride the stream without touching this layer.  Measured per-stage
// wall times feed pipeline::simulate via stage::from_trace, so Figure-2
// throughput/latency numbers come from the actual code paths instead of
// lognormal stand-ins.
//
// Determinism: every channel use draws from an RNG stream derived from
// (seed, domain, use index) and every (use, path) solve from
// (seed, domain, use * num_paths + path), following the parallel_runner
// scheme — the thread pool decides only *when* a cell runs, never *what* it
// computes, and aggregation is serial in use order.  All link-layer
// statistics (BER, ML costs, exact-frame counts) are therefore bit-identical
// at any thread count; only the measured wall times vary run to run.  The
// golden-value test in tests/link_test.cpp pins these statistics to the
// values the pre-registry (enum-dispatch) implementation produced.
#ifndef HCQ_LINK_LINK_SIM_H
#define HCQ_LINK_LINK_SIM_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/ber.h"
#include "paths/detection_path.h"
#include "pipeline/pipeline.h"
#include "util/table.h"
#include "wireless/channel.h"
#include "wireless/modulation.h"

namespace hcq::link {

/// Link-simulation knobs.  Defaults exercise the acceptance scenario: >= 100
/// channel uses through wireless -> QUBO -> {linear, tree search, exact
/// sphere, SA, hybrid}.  Per-path knobs (K-best width, SA budget, hybrid
/// reads/schedule, ...) live inside the specs, not here.
struct link_config {
    std::size_t num_uses = 120;   ///< channel uses in the stream
    std::size_t num_users = 4;    ///< transmit streams, N_r = N_t
    wireless::modulation mod = wireless::modulation::qam16;
    wireless::channel_model channel = wireless::channel_model::rayleigh;
    bool noiseless = false;       ///< paper Section-4.2 corpus setting (no AWGN)
    double snr_db = 16.0;         ///< per-antenna SNR when AWGN is enabled

    /// Paths every use is detected by, in report order; resolved through
    /// paths::registry.  Two specs may share a kind (e.g. two K-best widths
    /// side by side) but exact duplicates — same canonical spec — throw.
    std::vector<paths::path_spec> paths =
        paths::parse_spec_list("zf,kbest,sphere,sa,gsra");

    std::size_t num_threads = 0;   ///< worker threads (0 = hardware concurrency)
    std::uint64_t seed = 1;        ///< master seed for all derived streams
    double offered_load = 0.9;     ///< arrival rate / bottleneck rate in the replay
};

/// Measured wall-time trace of one named processing stage across the stream.
///
/// Percentile semantics: an empty trace has mean_us() == p50_us() ==
/// p99_us() == 0.0 (there is nothing to summarise, and 0 keeps replay
/// arithmetic finite); a single-entry trace returns that entry for every
/// percentile.  With two or more entries the percentiles come from
/// metrics::percentile (linear interpolation of the sorted data).
struct stage_trace {
    std::string name;
    std::vector<double> service_us;  ///< one entry per channel use

    [[nodiscard]] double mean_us() const;
    [[nodiscard]] double p50_us() const;
    [[nodiscard]] double p99_us() const;
};

/// Everything one detection path accumulated over the stream.
struct path_report {
    std::string kind;  ///< registry kind, e.g. "kbest"
    std::string name;  ///< display name, e.g. "K-best"
    std::string spec;  ///< canonical spec, e.g. "kbest:width=8"
    metrics::ber_counter ber;        ///< detected bits vs transmitted bits
    std::size_t exact_frames = 0;    ///< uses whose detected bits match tx exactly
    double sum_ml_cost = 0.0;        ///< sum of ||y - H x_hat||^2 (deterministic)

    /// Per-stage measured service traces, front-end first (synthesis and
    /// QUBO reduction are shared across paths; solve stages are per path —
    /// e.g. the hybrid splits into its classical and quantum halves).
    std::vector<stage_trace> stages;

    /// Tandem-queue replay of the measured traces at the configured offered
    /// load (pipeline::simulate over stage::from_trace).
    pipeline::simulation_result replay;

    [[nodiscard]] std::vector<std::string> stage_names() const;
};

/// Full link-simulation outcome.
struct link_report {
    link_config config;
    stage_trace synthesis;  ///< channel + modulation synthesis, shared front-end
    stage_trace reduction;  ///< ML -> QUBO transform, shared by the QUBO-based
                            ///< paths (all-zero when none is configured)
    std::vector<path_report> paths;

    /// First path whose registry kind, display name, or canonical spec
    /// equals `query` (e.g. "sphere", "SD", or "kbest:width=16"); throws
    /// std::out_of_range when absent.
    [[nodiscard]] const path_report& path(std::string_view query) const;
};

/// Runs the stream end to end.  Throws std::invalid_argument on zero uses or
/// users, an empty path list, an unknown/malformed path spec, a duplicated
/// canonical spec, or a non-positive offered load.
[[nodiscard]] link_report run_link_simulation(const link_config& config);

/// One row per path: BER, measured mean/p50/p99 solve service, and the
/// replay's sustained throughput and p50/p99 latency (the ARQ budget view).
[[nodiscard]] util::table summary_table(const link_report& report);

}  // namespace hcq::link

#endif  // HCQ_LINK_LINK_SIM_H
