// Serving front end under load — goodput, reject rate, and tail latency of
// the detector-bank TCP server (src/serve/) as offered load sweeps from
// comfortable to past saturation.
//
// The paper's Section-3 pipeline argument is about sustaining successive
// channel uses through a hybrid structure; this bench closes the loop at
// the system boundary: real loopback sockets, a kxra device bank behind a
// worker pool, bounded admission, and an open-loop Poisson load generator.
// Below capacity, goodput tracks offered load and rejects stay at zero;
// past capacity, goodput plateaus at the bank's service rate and the
// admission policy sheds the excess as BUSY — the 503-style behaviour the
// serve layer exists to provide.  Capacity is first measured with a short
// closed-loop calibration run, so the sweep's load points are
// machine-independent multiples of the bank's actual service rate.
//
// Flags (beyond the common --scale/--seed/--csv/--json):
//   --spec=kxra:k=4    detection-path spec the requests name
//   --uses=32          channel uses per request
//   --workers=4        server worker threads
//   --capacity=8       admission-queue slots (small, to make shedding visible)
//   --connections=4    loadgen connections
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/client.h"
#include "serve/tcp_server.h"

int main(int argc, char** argv) {
    using namespace hcq;
    const bench::context ctx(argc, argv);
    ctx.banner("Serving front end: goodput / reject rate / tail latency vs offered load",
               "Kim et al., HotNets'20, Section 3 (pipeline, taken to the wire)");

    const std::string spec = ctx.flags.get_string("spec", "kxra:k=4");
    const auto uses = static_cast<std::uint32_t>(ctx.flags.get_int("uses", 32));
    const auto workers = static_cast<std::size_t>(ctx.flags.get_int("workers", 4));
    const auto capacity = static_cast<std::size_t>(ctx.flags.get_int("capacity", 8));
    const auto connections = static_cast<std::size_t>(ctx.flags.get_int("connections", 4));

    serve::server_config server_config;
    server_config.port = 0;
    server_config.num_workers = workers;
    server_config.admission_capacity = capacity;
    server_config.policy = pipeline::backpressure::drop_newest;
    serve::tcp_server server(server_config);

    serve::loadgen_config base;
    base.port = server.port();
    base.num_connections = connections;
    base.seed = ctx.seed;
    base.request_template.seed = ctx.seed;
    base.request_template.num_uses = uses;
    base.request_template.spec = spec;

    // Calibrate the bank's service rate with a short closed-loop run.
    serve::loadgen_config calib = base;
    calib.mode = serve::loadgen_mode::closed_loop;
    calib.num_connections = workers;  // one window per worker saturates the bank
    calib.total_requests = ctx.scaled(32);
    const auto calib_report = serve::run_loadgen(calib);
    const double capacity_rps =
        calib_report.goodput_uses_per_s() / static_cast<double>(uses);
    if (!ctx.json) {
        std::cout << "calibration (closed loop, " << calib.total_requests
                  << " requests): " << serve::summarize(calib_report) << "\n"
                  << "measured capacity ~" << util::format_double(capacity_rps, 1)
                  << " requests/s\n\n";
    }

    const double duration_s = std::max(0.25, 1.0 * util::scale_factor(ctx.scale));
    util::table t({"load x capacity", "offered rps", "sent", "ok", "busy", "deadline",
                   "reject frac", "goodput use/s", "latency p50 us", "latency p99 us",
                   "queue wait p99 us"});
    for (const double load : {0.5, 0.8, 1.1, 1.5}) {
        serve::loadgen_config config = base;
        config.mode = serve::loadgen_mode::open_loop;
        config.offered_rps = std::max(1.0, load * capacity_rps);
        config.duration_s = duration_s;
        // Distinct tenants per load point keep every request's derived
        // stream unique across the sweep.
        config.tenant_base = 1 + static_cast<std::uint64_t>(load * 100.0);
        const auto report = serve::run_loadgen(config);
        t.add(load, config.offered_rps, report.sent, report.ok, report.busy,
              report.deadline,
              report.reject_fraction(), report.goodput_uses_per_s(),
              report.latency.p50(), report.latency.p99(), report.queue_wait.p99());
    }
    ctx.emit(t);
    server.stop();
    return 0;
}
