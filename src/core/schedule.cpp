#include "core/schedule.h"

#include <cmath>
#include <stdexcept>

namespace hcq::anneal {

const char* to_string(protocol p) noexcept {
    switch (p) {
        case protocol::forward: return "FA";
        case protocol::reverse: return "RA";
        case protocol::forward_reverse: return "FR";
    }
    return "?";
}

anneal_schedule::anneal_schedule(std::vector<schedule_point> points, std::string label)
    : label_(std::move(label)) {
    if (points.size() < 2) throw std::invalid_argument("anneal_schedule: need >= 2 points");
    if (points.front().time_us != 0.0) {
        throw std::invalid_argument("anneal_schedule: must start at t = 0");
    }
    for (const auto& p : points) {
        if (p.s < 0.0 || p.s > 1.0) {
            throw std::invalid_argument("anneal_schedule: s outside [0, 1]");
        }
        if (!std::isfinite(p.time_us) || p.time_us < 0.0) {
            throw std::invalid_argument("anneal_schedule: bad time");
        }
    }
    points_.push_back(points.front());
    for (std::size_t i = 1; i < points.size(); ++i) {
        const auto& prev = points_.back();
        const auto& cur = points[i];
        if (cur.time_us == prev.time_us && cur.s == prev.s) continue;  // collapse duplicates
        if (cur.time_us <= prev.time_us) {
            throw std::invalid_argument("anneal_schedule: times must strictly increase");
        }
        points_.push_back(cur);
    }
    if (points_.size() < 2 || points_.back().time_us <= 0.0) {
        throw std::invalid_argument("anneal_schedule: zero total duration");
    }
}

anneal_schedule anneal_schedule::forward_plain(double anneal_time_us) {
    if (anneal_time_us <= 0.0) throw std::invalid_argument("forward_plain: t_a <= 0");
    return anneal_schedule({{0.0, 0.0}, {anneal_time_us, 1.0}}, "FA-plain");
}

anneal_schedule anneal_schedule::forward(double anneal_time_us, double pause_location,
                                         double pause_time_us) {
    const double ta = anneal_time_us;
    const double sp = pause_location;
    const double tp = pause_time_us;
    if (sp <= 0.0 || sp >= 1.0) throw std::invalid_argument("forward: s_p outside (0, 1)");
    if (tp < 0.0) throw std::invalid_argument("forward: t_p < 0");
    if (ta <= sp) throw std::invalid_argument("forward: requires t_a > s_p (unit ramp rate)");
    return anneal_schedule({{0.0, 0.0}, {sp, sp}, {sp + tp, sp}, {ta + tp, 1.0}}, "FA");
}

anneal_schedule anneal_schedule::reverse(double switch_pause_location, double pause_time_us) {
    const double sp = switch_pause_location;
    const double tp = pause_time_us;
    if (sp <= 0.0 || sp >= 1.0) throw std::invalid_argument("reverse: s_p outside (0, 1)");
    if (tp < 0.0) throw std::invalid_argument("reverse: t_p < 0");
    return anneal_schedule(
        {{0.0, 1.0}, {1.0 - sp, sp}, {1.0 - sp + tp, sp}, {2.0 * (1.0 - sp) + tp, 1.0}}, "RA");
}

anneal_schedule anneal_schedule::forward_reverse(double turn_location,
                                                 double switch_pause_location,
                                                 double pause_time_us, double anneal_time_us) {
    const double cp = turn_location;
    const double sp = switch_pause_location;
    const double tp = pause_time_us;
    const double ta = anneal_time_us;
    if (sp <= 0.0 || sp >= 1.0) throw std::invalid_argument("forward_reverse: s_p outside (0, 1)");
    if (cp <= sp || cp >= 1.0) {
        throw std::invalid_argument("forward_reverse: requires s_p < c_p < 1");
    }
    if (tp < 0.0) throw std::invalid_argument("forward_reverse: t_p < 0");
    if (ta <= sp) throw std::invalid_argument("forward_reverse: requires t_a > s_p");
    return anneal_schedule({{0.0, 0.0},
                            {cp, cp},
                            {2.0 * cp - sp, sp},
                            {2.0 * cp - sp + tp, sp},
                            {2.0 * cp - 2.0 * sp + tp + ta, 1.0}},
                           "FR");
}

anneal_schedule anneal_schedule::make(protocol p, double s_p, double t_p, double t_a,
                                      double c_p) {
    switch (p) {
        case protocol::forward: return forward(t_a, s_p, t_p);
        case protocol::reverse: return reverse(s_p, t_p);
        case protocol::forward_reverse: return forward_reverse(c_p, s_p, t_p, t_a);
    }
    throw std::invalid_argument("anneal_schedule::make: unknown protocol");
}

double anneal_schedule::s_at(double time_us) const {
    if (time_us <= points_.front().time_us) return points_.front().s;
    if (time_us >= points_.back().time_us) return points_.back().s;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (time_us <= points_[i].time_us) {
            const auto& a = points_[i - 1];
            const auto& b = points_[i];
            const double frac = (time_us - a.time_us) / (b.time_us - a.time_us);
            return a.s + frac * (b.s - a.s);
        }
    }
    return points_.back().s;  // unreachable
}

}  // namespace hcq::anneal
