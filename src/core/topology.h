// Chimera hardware graph — the qubit topology of the D-Wave 2000Q the paper
// prototypes on.
//
// A Chimera C_M is an M x M grid of K_{4,4} unit cells: each cell holds 4
// "vertical" and 4 "horizontal" qubits forming a complete bipartite graph;
// vertical qubits couple to the same-index vertical qubit of the cell below,
// horizontal qubits to the same-index horizontal qubit of the cell to the
// right.  Dense problems (like the paper's MIMO QUBOs) are not subgraphs of
// Chimera and must be *minor-embedded* (core/embedding.h).
#ifndef HCQ_CORE_TOPOLOGY_H
#define HCQ_CORE_TOPOLOGY_H

#include <cstddef>
#include <utility>
#include <vector>

namespace hcq::anneal {

/// Chimera C_M graph with L qubits per bipartite shore (D-Wave 2000Q: M = 16,
/// L = 4).
class chimera_graph {
public:
    /// Builds C_M with shore size L; throws std::invalid_argument on zeros.
    explicit chimera_graph(std::size_t grid_size, std::size_t shore_size = 4);

    [[nodiscard]] std::size_t grid_size() const noexcept { return m_; }
    [[nodiscard]] std::size_t shore_size() const noexcept { return l_; }
    [[nodiscard]] std::size_t num_nodes() const noexcept { return m_ * m_ * 2 * l_; }
    [[nodiscard]] std::size_t num_edges() const;

    /// Node id of (row, column, side, index): side 0 = vertical shore,
    /// side 1 = horizontal shore, index < shore_size.  Bounds-checked.
    [[nodiscard]] std::size_t node(std::size_t row, std::size_t column, std::size_t side,
                                   std::size_t index) const;

    /// Inverse of `node`.
    struct coordinates {
        std::size_t row = 0;
        std::size_t column = 0;
        std::size_t side = 0;
        std::size_t index = 0;
    };
    [[nodiscard]] coordinates locate(std::size_t node_id) const;

    /// True when u and v share a coupler.
    [[nodiscard]] bool adjacent(std::size_t u, std::size_t v) const;

    /// All neighbours of a node.
    [[nodiscard]] std::vector<std::size_t> neighbors(std::size_t node_id) const;

    /// Every coupler as an (u, v) pair with u < v.
    [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> edges() const;

private:
    void check_node(std::size_t node_id) const;

    std::size_t m_;
    std::size_t l_;
};

}  // namespace hcq::anneal

#endif  // HCQ_CORE_TOPOLOGY_H
