// Column-aligned text tables for bench output (the "rows/series the paper
// reports"), with optional CSV emission for downstream plotting.
#ifndef HCQ_UTIL_TABLE_H
#define HCQ_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace hcq::util {

/// Formats a double with `precision` significant decimals, trimming noise.
[[nodiscard]] std::string format_double(double value, int precision = 4);

/// Renders `text` as a quoted JSON string literal (the same escaping
/// table::print_json applies to cells) — for callers composing JSON objects
/// around a table, e.g. the self-describing BENCH_*.json envelope.
[[nodiscard]] std::string json_quote(const std::string& text);

/// Simple row/column table.  Cells are strings; use `add_row` with
/// heterogeneous convertible values via the variadic overload.
class table {
public:
    explicit table(std::vector<std::string> headers);

    /// Appends a pre-formatted row; must match the header arity.
    void add_row(std::vector<std::string> cells);

    /// Appends a row of printable values (numbers formatted compactly).
    template <typename... Ts>
    void add(const Ts&... cells) {
        add_row({cell_to_string(cells)...});
    }

    /// Writes an aligned, human-readable rendering.
    void print(std::ostream& os) const;

    /// Writes RFC-4180-ish CSV (no quoting of embedded commas: callers keep
    /// cells comma-free).
    void print_csv(std::ostream& os) const;

    /// Writes a JSON array of row objects keyed by the headers — the
    /// machine-readable form CI bench artifacts (`BENCH_*.json`) use.
    /// Cells that parse fully as finite numbers are emitted unquoted; all
    /// other cells become JSON strings (with standard escaping).
    void print_json(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

private:
    static std::string cell_to_string(const std::string& s) { return s; }
    static std::string cell_to_string(const char* s) { return s; }
    static std::string cell_to_string(double v) { return format_double(v); }
    static std::string cell_to_string(int v) { return std::to_string(v); }
    static std::string cell_to_string(long v) { return std::to_string(v); }
    static std::string cell_to_string(unsigned v) { return std::to_string(v); }
    static std::string cell_to_string(std::size_t v) { return std::to_string(v); }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace hcq::util

#endif  // HCQ_UTIL_TABLE_H
