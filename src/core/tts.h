// Time-to-solution — the paper's Eq. (2) (after Ronnow et al. [43]):
//     TTS(C_t%) = duration * log(1 - C_t/100) / log(1 - p*),
// the expected total anneal time needed to see the ground state at least
// once with confidence C_t, given per-read success probability p*.
#ifndef HCQ_CORE_TTS_H
#define HCQ_CORE_TTS_H

namespace hcq::hybrid {

/// TTS in the units of `duration_us`.  Edge cases: p_star <= 0 yields
/// +infinity; p_star >= 1 yields `duration_us` (one read always suffices —
/// the formula's limit of 0 is clamped up since no run can beat a single
/// read).  Throws std::invalid_argument for confidence outside (0, 100) or
/// non-positive duration.
[[nodiscard]] double time_to_solution_us(double duration_us, double p_star,
                                         double confidence_percent = 99.0);

}  // namespace hcq::hybrid

#endif  // HCQ_CORE_TTS_H
