#include "detect/kbest.h"

#include <algorithm>
#include <stdexcept>

#include "detect/real_model.h"
#include "util/timer.h"

namespace hcq::detect {

namespace {

struct partial_path {
    std::vector<double> amplitudes;  // filled from the last dimension down
    double cost = 0.0;
};

}  // namespace

kbest_detector::kbest_detector(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("kbest_detector: k == 0");
}

std::string kbest_detector::name() const { return "KB" + std::to_string(k_); }

detection_result kbest_detector::detect(const wireless::mimo_instance& instance) const {
    const util::timer clock;
    const real_model model = make_real_model(instance);
    const std::size_t dims = model.dims;

    std::vector<partial_path> beam{partial_path{std::vector<double>(dims, 0.0), 0.0}};
    std::size_t nodes = 0;

    for (std::size_t step = 0; step < dims; ++step) {
        const std::size_t level = dims - 1 - step;
        std::vector<partial_path> expanded;
        expanded.reserve(beam.size() * model.alphabet.size());
        for (const auto& path : beam) {
            double acc = model.y_eff[level];
            for (std::size_t j = level + 1; j < dims; ++j) {
                acc -= model.r(level, j) * path.amplitudes[j];
            }
            for (const double amplitude : model.alphabet) {
                const double residual = acc - model.r(level, level) * amplitude;
                partial_path child = path;
                child.amplitudes[level] = amplitude;
                child.cost = path.cost + residual * residual;
                expanded.push_back(std::move(child));
                ++nodes;
            }
        }
        const std::size_t keep = std::min(k_, expanded.size());
        std::partial_sort(expanded.begin(), expanded.begin() + keep, expanded.end(),
                          [](const partial_path& a, const partial_path& b) {
                              return a.cost < b.cost;
                          });
        expanded.resize(keep);
        beam = std::move(expanded);
    }

    auto result = assemble_result(instance, beam.front().amplitudes, nodes);
    result.elapsed_us = clock.elapsed_us();
    return result;
}

}  // namespace hcq::detect
