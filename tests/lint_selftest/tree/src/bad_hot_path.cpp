// Fixture: a file tagged hot-path must not allocate.  // hcq-hot-path
#include <vector>

void violates() {
    int* leak = new int(7);            // finding: operator new
    std::vector<double> owned(16);     // finding: owning vector
    std::vector<double>& alias = owned;  // clean: reference binds, no allocation
    alias[0] = static_cast<double>(*leak);
    delete leak;
}
