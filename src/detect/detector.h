// Common interface for classical MIMO detectors.
//
// These serve two roles in the paper's architecture: (a) baselines, and
// (b) candidate *classical initialisers* for the hybrid reverse-annealing
// design (Section 5 names linear solvers and tree-search solvers as the
// natural next step beyond greedy search).
#ifndef HCQ_DETECT_DETECTOR_H
#define HCQ_DETECT_DETECTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "wireless/mimo.h"

namespace hcq::detect {

/// Outcome of one detection run.
struct detection_result {
    linalg::cvec symbols;                ///< detected symbol vector (lattice points)
    std::vector<std::uint8_t> bits;      ///< natural-map bits of `symbols`
    double ml_cost = 0.0;                ///< ||y - H x_hat||^2
    std::size_t nodes_visited = 0;       ///< tree nodes expanded (0 for linear detectors)
    double elapsed_us = 0.0;             ///< wall-clock compute time
};

/// Reusable per-worker detection scratch (detect/scratch.h): decomposition
/// caches plus resize-in-place buffers shared by the built-in detectors.
struct detect_scratch;

/// Abstract detector.
class detector {
public:
    virtual ~detector() = default;

    /// Runs detection on one instance.
    [[nodiscard]] virtual detection_result detect(const wireless::mimo_instance& instance) const = 0;

    /// detect() into a reused result through caller-owned scratch.  Contract:
    /// bit-identical symbols/bits/ml_cost to detect() (elapsed_us and other
    /// timing fields are wall time and may differ).  The default delegates to
    /// detect(); the built-in detectors override it to reuse `scratch`'s
    /// buffers and decomposition caches so a warmed-up call allocates
    /// nothing.
    virtual void detect_into(const wireless::mimo_instance& instance, detect_scratch& scratch,
                             detection_result& out) const {
        (void)scratch;
        out = detect(instance);
    }

    /// Short identifier used in bench output (e.g. "ZF", "SD").
    [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hcq::detect

#endif  // HCQ_DETECT_DETECTOR_H
