// Tests for the extension subsystems: SIC detection, soft LLRs, QUBO
// serialisation, and the device noise models.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/device.h"
#include "detect/sic.h"
#include "detect/sphere.h"
#include "detect/transform.h"
#include "qubo/brute_force.h"
#include "qubo/generator.h"
#include "qubo/serialize.h"
#include "util/rng.h"
#include "wireless/soft.h"

namespace {

namespace wl = hcq::wireless;
namespace an = hcq::anneal;
namespace q = hcq::qubo;

TEST(Sic, RecoversNoiselessTruth) {
    for (const auto mod : wl::all_modulations()) {
        hcq::util::rng rng(static_cast<std::uint64_t>(mod) + 700);
        const auto inst = wl::noiseless_paper_instance(rng, 5, mod);
        const auto result = hcq::detect::sic_detector().detect(inst);
        EXPECT_EQ(result.bits, inst.tx_bits) << wl::to_string(mod);
        EXPECT_NEAR(result.ml_cost, 0.0, 1e-9);
    }
}

TEST(Sic, CostConsistencyAndOrderingVsZf) {
    hcq::util::rng rng(701);
    double sic_total = 0.0;
    double sd_total = 0.0;
    for (int t = 0; t < 15; ++t) {
        wl::mimo_config config;
        config.mod = wl::modulation::qam16;
        config.num_users = 4;
        config.num_antennas = 6;
        config.channel = wl::channel_model::rayleigh;
        config.noise_variance = 3.0;
        const auto inst = wl::synthesize(rng, config);
        const auto sic = hcq::detect::sic_detector().detect(inst);
        EXPECT_NEAR(sic.ml_cost, inst.ml_cost(sic.symbols), 1e-9);
        sic_total += sic.ml_cost;
        sd_total += hcq::detect::sphere_detector().detect(inst).ml_cost;
    }
    EXPECT_LE(sd_total, sic_total + 1e-9);  // exact ML never worse
    EXPECT_EQ(hcq::detect::sic_detector().name(), "SIC");
}

TEST(Soft, SymbolLlrSignsFollowObservation) {
    // BPSK: observation near +1 (bit 1 under the natural map) gives a
    // negative LLR (favouring bit 1); near -1, positive.
    const auto near_plus = wl::symbol_llrs(wl::modulation::bpsk, {0.9, 0.0}, 0.5);
    ASSERT_EQ(near_plus.size(), 1u);
    EXPECT_LT(near_plus[0], 0.0);
    const auto near_minus = wl::symbol_llrs(wl::modulation::bpsk, {-0.9, 0.0}, 0.5);
    EXPECT_GT(near_minus[0], 0.0);
    EXPECT_THROW((void)wl::symbol_llrs(wl::modulation::bpsk, {0.0, 0.0}, 0.0),
                 std::invalid_argument);
}

TEST(Soft, ConfidenceScalesWithNoise) {
    const auto confident = wl::symbol_llrs(wl::modulation::qpsk, {1.0, -1.0}, 0.1);
    const auto hesitant = wl::symbol_llrs(wl::modulation::qpsk, {1.0, -1.0}, 10.0);
    for (std::size_t b = 0; b < confident.size(); ++b) {
        EXPECT_GT(std::fabs(confident[b]), std::fabs(hesitant[b]));
    }
}

TEST(Soft, HardenedLlrsMatchExactSymbolOnCleanObservation) {
    for (const auto mod : wl::all_modulations()) {
        hcq::util::rng rng(static_cast<std::uint64_t>(mod) + 710);
        const auto bits = rng.bits(wl::bits_per_symbol(mod));
        const auto symbol = wl::modulate_symbol(mod, bits);
        const auto llrs = wl::symbol_llrs(mod, symbol, 0.05);
        EXPECT_EQ(wl::harden(llrs), bits) << wl::to_string(mod);
    }
}

TEST(Soft, ZfSoftBitsRecoverNoiselessTruth) {
    // zf_soft_bits is deprecated (paths::detection_path::soft_output is the
    // unified producer) but kept for source compatibility; this test pins the
    // legacy entry point until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    hcq::util::rng rng(711);
    const auto inst = wl::noiseless_paper_instance(rng, 4, wl::modulation::qam16);
    const auto llrs = wl::zf_soft_bits(inst);
    ASSERT_EQ(llrs.size(), inst.num_bits());
    EXPECT_EQ(wl::harden(llrs), inst.tx_bits);
    EXPECT_THROW((void)wl::zf_soft_bits(inst, 0.0), std::invalid_argument);
#pragma GCC diagnostic pop
}

TEST(Serialize, RoundTripPreservesModel) {
    hcq::util::rng rng(720);
    auto m = q::random_qubo(rng, 9, 0.6, -2.0, 2.0);
    m.set_offset(3.25);
    const auto text = q::to_string(m);
    const auto back = q::from_string(text);
    ASSERT_EQ(back.num_variables(), 9u);
    EXPECT_DOUBLE_EQ(back.offset(), 3.25);
    for (std::size_t i = 0; i < 9; ++i) {
        for (std::size_t j = i; j < 9; ++j) {
            EXPECT_DOUBLE_EQ(back.coefficient(i, j), m.coefficient(i, j));
        }
    }
}

TEST(Serialize, ToleratesCommentsAndBlankLines) {
    const std::string text =
        "# a comment\n\nhcq-qubo v1\n# another\nn 2 offset -1.5\n0 0 2\n# term\n0 1 -3\n";
    const auto m = q::from_string(text);
    EXPECT_EQ(m.num_variables(), 2u);
    EXPECT_DOUBLE_EQ(m.offset(), -1.5);
    EXPECT_DOUBLE_EQ(m.linear(0), 2.0);
    EXPECT_DOUBLE_EQ(m.coefficient(0, 1), -3.0);
}

TEST(Serialize, RejectsMalformedInput) {
    EXPECT_THROW((void)q::from_string(""), std::invalid_argument);
    EXPECT_THROW((void)q::from_string("wrong header\nn 2 offset 0\n"), std::invalid_argument);
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nnope\n"), std::invalid_argument);
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n0 5 1\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n1 0 1\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n0 1 1\n0 1 2\n"),
                 std::invalid_argument);
    EXPECT_THROW((void)q::from_string("hcq-qubo v1\nn 2 offset 0\n0 1 abc\n"),
                 std::invalid_argument);
}

TEST(DeviceNoise, ZeroNoiseMatchesBaseline) {
    hcq::util::rng rng_a(730);
    hcq::util::rng rng_b(730);
    const auto m = q::random_qubo(rng_a, 8, 1.0, -1.0, 1.0);
    const auto m2 = q::random_qubo(rng_b, 8, 1.0, -1.0, 1.0);
    const an::annealer_emulator base;
    an::annealer_config cfg;
    cfg.control_noise = 0.0;
    cfg.readout_flip_probability = 0.0;
    const an::annealer_emulator configured(cfg);
    const auto fa = an::anneal_schedule::forward_plain(2.0);
    const auto s1 = base.sample(m, fa, 10, rng_a);
    const auto s2 = configured.sample(m2, fa, 10, rng_b);
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s1[i].bits, s2[i].bits);
}

TEST(DeviceNoise, ControlNoiseDegradesSuccess) {
    hcq::util::rng rng(731);
    const auto m = q::random_qubo(rng, 14, 1.0, -1.0, 1.0);
    const auto exact = q::brute_force_minimize(m);
    const auto fa = an::anneal_schedule::forward_plain(4.0);

    const an::annealer_emulator clean;
    an::annealer_config noisy_cfg;
    noisy_cfg.control_noise = 0.5;  // drastic misprogramming
    const an::annealer_emulator noisy(noisy_cfg);

    auto rng1 = rng.derive(1);
    auto rng2 = rng.derive(2);
    const double p_clean =
        clean.sample(m, fa, 80, rng1).success_probability(exact.best_energy);
    const double p_noisy =
        noisy.sample(m, fa, 80, rng2).success_probability(exact.best_energy);
    EXPECT_GE(p_clean, p_noisy);
}

TEST(DeviceNoise, ReadoutFlipsPerturbFrozenRegister) {
    hcq::util::rng rng(732);
    const auto m = q::random_qubo(rng, 20, 1.0, -1.0, 1.0);
    an::annealer_config cfg;
    cfg.readout_flip_probability = 0.5;
    const an::annealer_emulator device(cfg);
    // Frozen hold: without read-out noise the state would be exactly the
    // programmed one.
    const an::anneal_schedule hold({{0.0, 1.0}, {1.0, 1.0}}, "hold");
    const q::bit_vector zeros(20, 0);
    std::size_t flipped = 0;
    for (int read = 0; read < 20; ++read) {
        const auto bits = device.anneal_once(m, hold, rng, zeros);
        for (const auto b : bits) flipped += b;
    }
    EXPECT_GT(flipped, 100u);  // ~200 expected at p = 0.5
    EXPECT_LT(flipped, 300u);
}

TEST(DeviceNoise, ConfigValidation) {
    an::annealer_config cfg;
    cfg.control_noise = -0.1;
    EXPECT_THROW(an::annealer_emulator{cfg}, std::invalid_argument);
    cfg = {};
    cfg.readout_flip_probability = 1.5;
    EXPECT_THROW(an::annealer_emulator{cfg}, std::invalid_argument);
}

}  // namespace
