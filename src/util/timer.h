// Wall-clock timing helper — the one module allowed to touch <chrono>
// directly (scripts/hcq_lint.py wall-clock rule); everything else measures
// and sleeps through this header.
#ifndef HCQ_UTIL_TIMER_H
#define HCQ_UTIL_TIMER_H

#include <chrono>
#include <thread>

namespace hcq::util {

/// Monotonic stopwatch started at construction.
class timer {
public:
    timer() : start_(clock::now()) {}

    /// Restarts the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Elapsed time in microseconds.
    [[nodiscard]] double elapsed_us() const {
        return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
    }

    /// Elapsed time in seconds.
    [[nodiscard]] double elapsed_s() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Blocks the calling thread for (at least) `us` microseconds against the
/// monotonic clock; non-positive durations return immediately.  Open-loop
/// load generators pace arrivals through this instead of spinning.
inline void sleep_us(double us) {
    if (!(us > 0.0)) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

}  // namespace hcq::util

#endif  // HCQ_UTIL_TIMER_H
