#include "core/device.h"

#include <cmath>
#include <stdexcept>

#include "classical/metropolis.h"

namespace hcq::anneal {

annealer_emulator::annealer_emulator(annealer_config config) : config_(config) {
    if (config_.sweeps_per_us <= 0.0) {
        throw std::invalid_argument("annealer_emulator: sweeps_per_us <= 0");
    }
    if (config_.temperature_scale <= 0.0) {
        throw std::invalid_argument("annealer_emulator: temperature_scale <= 0");
    }
    if (config_.freeze_fraction < 0.0) {
        throw std::invalid_argument("annealer_emulator: freeze_fraction < 0");
    }
    if (config_.control_noise < 0.0) {
        throw std::invalid_argument("annealer_emulator: control_noise < 0");
    }
    if (config_.readout_flip_probability < 0.0 || config_.readout_flip_probability > 1.0) {
        throw std::invalid_argument("annealer_emulator: readout_flip_probability outside [0,1]");
    }
}

std::size_t annealer_emulator::sweeps_for(const anneal_schedule& schedule) const {
    const double raw = schedule.duration_us() * config_.sweeps_per_us;
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(raw)));
}

qubo::bit_vector annealer_emulator::anneal_once(
    const qubo::qubo_model& q, const anneal_schedule& schedule, util::rng& rng,
    const std::optional<qubo::bit_vector>& initial) const {
    qubo::bit_vector start;
    if (schedule.starts_classical()) {
        if (!initial.has_value()) {
            throw std::invalid_argument(
                "annealer_emulator: reverse schedule requires a programmed initial state");
        }
        if (initial->size() != q.num_variables()) {
            throw std::invalid_argument("annealer_emulator: initial state size mismatch");
        }
        start = *initial;
    } else {
        start = rng.bits(q.num_variables());
    }

    const double scale = std::max(q.max_abs_coefficient(), 1e-12);

    // Analog control error: the device executes a per-read perturbation of
    // the programmed problem, not the problem itself.  (Energies reported
    // upstream are always evaluated on the true model.)
    const qubo::qubo_model* executed = &q;
    qubo::qubo_model perturbed;
    if (config_.control_noise > 0.0) {
        perturbed = q;
        const double sigma = config_.control_noise * scale;
        const std::size_t n = q.num_variables();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i; j < n; ++j) {
                if (i == j || q.coefficient(i, j) != 0.0) {
                    perturbed.add_term(i, j, rng.normal(0.0, sigma));
                }
            }
        }
        executed = &perturbed;
    }

    solvers::metropolis_engine engine(*executed, std::move(start));
    const double t0 = config_.temperature_scale * scale;
    const double freeze_below = config_.freeze_fraction * scale;
    const std::size_t sweeps = sweeps_for(schedule);
    const double dt = schedule.duration_us() / static_cast<double>(sweeps);

    for (std::size_t k = 0; k < sweeps; ++k) {
        const double t_mid = (static_cast<double>(k) + 0.5) * dt;
        const double s = schedule.s_at(t_mid);
        const double temperature = t0 * config_.map.fluctuation(s);
        if (temperature < freeze_below) continue;  // frozen register: no dynamics
        engine.sweep(temperature, rng);
    }

    qubo::bit_vector out = engine.state();
    if (config_.readout_flip_probability > 0.0) {
        for (auto& bit : out) {
            if (rng.bernoulli(config_.readout_flip_probability)) bit ^= 1U;
        }
    }
    return out;
}

void annealer_emulator::anneal_once_into(const qubo::qubo_model& q,
                                         const anneal_schedule& schedule, util::rng& rng,
                                         const qubo::bit_vector* initial,
                                         solvers::solve_scratch& scratch,
                                         qubo::bit_vector& out) const {
    // Mirrors anneal_once draw for draw; the start state, engine, and read
    // buffer live in the caller's scratch.
    qubo::bit_vector& start = scratch.bits_a;
    if (schedule.starts_classical()) {
        if (initial == nullptr) {
            throw std::invalid_argument(
                "annealer_emulator: reverse schedule requires a programmed initial state");
        }
        if (initial->size() != q.num_variables()) {
            throw std::invalid_argument("annealer_emulator: initial state size mismatch");
        }
        start.assign(initial->begin(), initial->end());
    } else {
        rng.bits_into(q.num_variables(), start);
    }

    const double scale = std::max(q.max_abs_coefficient(), 1e-12);

    const qubo::qubo_model* executed = &q;
    qubo::qubo_model perturbed;
    if (config_.control_noise > 0.0) {
        perturbed = q;
        const double sigma = config_.control_noise * scale;
        const std::size_t n = q.num_variables();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i; j < n; ++j) {
                if (i == j || q.coefficient(i, j) != 0.0) {
                    perturbed.add_term(i, j, rng.normal(0.0, sigma));
                }
            }
        }
        executed = &perturbed;
    }

    solvers::metropolis_engine& engine = scratch.engine;
    engine.reset(*executed, start);
    const double t0 = config_.temperature_scale * scale;
    const double freeze_below = config_.freeze_fraction * scale;
    const std::size_t sweeps = sweeps_for(schedule);
    const double dt = schedule.duration_us() / static_cast<double>(sweeps);

    for (std::size_t k = 0; k < sweeps; ++k) {
        const double t_mid = (static_cast<double>(k) + 0.5) * dt;
        const double s = schedule.s_at(t_mid);
        const double temperature = t0 * config_.map.fluctuation(s);
        if (temperature < freeze_below) continue;  // frozen register: no dynamics
        engine.sweep(temperature, rng);
    }

    out.assign(engine.state().begin(), engine.state().end());
    if (config_.readout_flip_probability > 0.0) {
        for (auto& bit : out) {
            if (rng.bernoulli(config_.readout_flip_probability)) bit ^= 1U;
        }
    }
}

double annealer_emulator::sample_best_into(const qubo::qubo_model& q,
                                           const anneal_schedule& schedule,
                                           std::size_t num_reads, util::rng& rng,
                                           const qubo::bit_vector* initial,
                                           solvers::solve_scratch& scratch,
                                           qubo::bit_vector& best) const {
    if (num_reads == 0) throw std::invalid_argument("annealer_emulator::sample: zero reads");
    const util::rng stream_base(rng());
    double best_energy = 0.0;
    bool has_best = false;
    for (std::size_t read = 0; read < num_reads; ++read) {
        util::rng stream = stream_base.derive(read);
        anneal_once_into(q, schedule, stream, initial, scratch, scratch.bits_c);
        const double energy = q.energy(scratch.bits_c);
        if (!has_best || energy < best_energy) {
            has_best = true;
            best_energy = energy;
            best.assign(scratch.bits_c.begin(), scratch.bits_c.end());
        }
    }
    return best_energy;
}

solvers::sample_set annealer_emulator::sample(
    const qubo::qubo_model& q, const anneal_schedule& schedule, std::size_t num_reads,
    util::rng& rng, const std::optional<qubo::bit_vector>& initial) const {
    if (num_reads == 0) throw std::invalid_argument("annealer_emulator::sample: zero reads");
    // One fresh salt per call so repeated calls with the same generator see
    // different, but fully deterministic, streams.
    const util::rng stream_base(rng());
    solvers::sample_set out;
    out.reserve(num_reads);
    for (std::size_t read = 0; read < num_reads; ++read) {
        util::rng stream = stream_base.derive(read);
        auto bits = anneal_once(q, schedule, stream, initial);
        const double energy = q.energy(bits);
        out.add(std::move(bits), energy);
    }
    return out;
}

}  // namespace hcq::anneal
