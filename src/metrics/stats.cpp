#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hcq::metrics {

void running_stats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
    if (values.empty()) throw std::invalid_argument("percentile: empty data");
    if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
    std::sort(values.begin(), values.end());
    if (values.size() == 1) return values.front();
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return percentile(std::move(values), 50.0); }

}  // namespace hcq::metrics
