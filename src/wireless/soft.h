// Soft information: per-bit log-likelihood ratios (LLRs) from a linear
// equaliser — the "pre-knowledge of variables (wireless symbols)" the paper's
// Section 3.1 proposes feeding into the QUBO as constraints (Figure 4).
//
// Convention: LLR_b = log P(b = 0 | y) - log P(b = 1 | y) under max-log
// approximation, so positive LLR favours bit 0 and |LLR| measures
// confidence.
#ifndef HCQ_WIRELESS_SOFT_H
#define HCQ_WIRELESS_SOFT_H

#include <vector>

#include "linalg/matrix.h"
#include "wireless/mimo.h"
#include "wireless/modulation.h"

namespace hcq::wireless {

/// Max-log LLRs of every bit of one symbol given a scalar observation
/// `equalized` with effective noise variance `noise_variance` (> 0).
[[nodiscard]] std::vector<double> symbol_llrs(modulation mod, linalg::cxd equalized,
                                              double noise_variance);

/// Per-bit LLRs for a whole instance via zero-forcing equalisation with
/// per-stream noise enhancement (diag of (H^H H)^-1).  Layout matches the
/// QUBO/transform bit layout (user-major, I bits then Q bits).  For a
/// noiseless instance pass `noise_floor` > 0 to bound confidences.
[[nodiscard]] std::vector<double> zf_soft_bits(const mimo_instance& instance,
                                               double noise_floor = 1e-3);

/// Hard decisions from LLRs (0 when LLR >= 0).
[[nodiscard]] std::vector<std::uint8_t> harden(const std::vector<double>& llrs);

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_SOFT_H
