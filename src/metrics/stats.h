// Streaming summary statistics and percentile helpers.
#ifndef HCQ_METRICS_STATS_H
#define HCQ_METRICS_STATS_H

#include <cstddef>
#include <vector>

namespace hcq::metrics {

/// Welford-style running mean/variance with min/max tracking.
class running_stats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation of the sorted data.
/// Throws std::invalid_argument on empty input or p outside [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Median shorthand.
[[nodiscard]] double median(std::vector<double> values);

}  // namespace hcq::metrics

#endif  // HCQ_METRICS_STATS_H
