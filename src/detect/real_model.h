// Real-valued lattice model shared by the tree-search detectors.
//
// Quadrature modulations use the full real embedding (2m x 2n); BPSK, whose
// symbols are purely real, uses the thinner [Re H; Im H] stacking so that the
// search never visits imaginary dimensions that carry no bits.  After QR,
// detectors operate on  min_a ||y_eff - R a||^2  with `a` ranging over the
// per-dimension odd PAM lattice.
#ifndef HCQ_DETECT_REAL_MODEL_H
#define HCQ_DETECT_REAL_MODEL_H

#include <vector>

#include "detect/detector.h"
#include "linalg/matrix.h"
#include "wireless/mimo.h"

namespace hcq::detect {

/// QR-preprocessed real lattice problem.
struct real_model {
    linalg::rmat r;       ///< dims x dims upper triangular
    linalg::rvec y_eff;   ///< Q^T y_real
    std::vector<double> alphabet;  ///< shared per-dimension amplitudes (ascending)
    std::size_t dims = 0;          ///< real search dimensions
    std::size_t num_users = 0;
    wireless::modulation mod = wireless::modulation::bpsk;
    bool quadrature = false;
};

/// Builds the model for one instance (QR of the embedded channel).
[[nodiscard]] real_model make_real_model(const wireless::mimo_instance& instance);

/// Converts per-dimension amplitudes (model ordering: all I components, then
/// all Q components) into a full detection_result for `instance`.
[[nodiscard]] detection_result assemble_result(const wireless::mimo_instance& instance,
                                               const std::vector<double>& amplitudes,
                                               std::size_t nodes_visited);

/// Slices a real value to the nearest alphabet amplitude.
[[nodiscard]] double slice_amplitude(double value, const std::vector<double>& alphabet);

}  // namespace hcq::detect

#endif  // HCQ_DETECT_REAL_MODEL_H
