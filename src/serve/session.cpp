#include "serve/session.h"

#include <cstring>
#include <utility>

#include "serve/protocol.h"

namespace hcq::serve {

session::session(std::uint64_t id, unique_fd fd) : id_(id), fd_(std::move(fd)) {}

bool session::read_ready() {
    // Compact lazily: only when the parse cursor has consumed more than half
    // the buffer, so steady-state small frames don't memmove per read.
    if (consumed_ > 0 && consumed_ * 2 >= in_.size()) {
        in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    std::uint8_t chunk[16384];
    for (;;) {
        const io_result r = read_some(fd_.get(), chunk, sizeof(chunk));
        if (r.again) return true;
        if (r.closed) return false;
        in_.insert(in_.end(), chunk, chunk + r.bytes);
        // A short read usually means the socket is drained; go back to the
        // poller rather than spinning on EAGAIN.
        if (r.bytes < sizeof(chunk)) return true;
    }
}

std::optional<std::vector<std::uint8_t>> session::next_frame() {
    const std::size_t avail = in_.size() - consumed_;
    if (avail < 4) return std::nullopt;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(in_[consumed_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    check_frame_length(len);  // throws protocol_error on 0 / oversized
    if (avail - 4 < len) return std::nullopt;
    std::vector<std::uint8_t> payload(in_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4),
                                      in_.begin() +
                                          static_cast<std::ptrdiff_t>(consumed_ + 4 + len));
    consumed_ += 4 + static_cast<std::size_t>(len);
    return payload;
}

void session::enqueue_output(std::vector<std::uint8_t> frame_bytes) {
    out_.push_back(std::move(frame_bytes));
}

bool session::write_ready() {
    while (!out_.empty()) {
        const auto& front = out_.front();
        const io_result r =
            write_some(fd_.get(), front.data() + out_offset_, front.size() - out_offset_);
        if (r.closed) return false;
        if (r.again) return true;
        out_offset_ += r.bytes;
        if (out_offset_ == front.size()) {
            out_.pop_front();
            out_offset_ = 0;
        }
    }
    return true;
}

}  // namespace hcq::serve
