// Tests for the end-to-end link simulator: deterministic statistics at any
// thread count, golden values pinning the registry-driven implementation to
// the pre-redesign enum dispatch, correct report shapes, exactness of the
// sphere path on the paper's noiseless corpus, stage_trace percentile
// semantics, and configuration validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "arq/arq.h"
#include "core/schedule.h"
#include "fec/code_spec.h"
#include "link/link_sim.h"
#include "paths/registry.h"

namespace {

namespace lk = hcq::link;
namespace pt = hcq::paths;
namespace wl = hcq::wireless;

lk::link_config small_config() {
    lk::link_config config;
    config.num_uses = 24;
    config.num_users = 2;
    config.mod = wl::modulation::qpsk;
    config.snr_db = 12.0;
    config.paths = pt::parse_spec_list("zf,mmse,kbest,sphere,sa:reads=4,sweeps=40,gsra:reads=10");
    config.seed = 77;
    return config;
}

TEST(LinkSim, StatisticsBitIdenticalAcrossThreadCounts) {
    auto config = small_config();

    config.num_threads = 1;
    const auto serial = lk::run_link_simulation(config);
    for (const std::size_t threads : {2UL, 8UL}) {
        config.num_threads = threads;
        const auto parallel = lk::run_link_simulation(config);
        ASSERT_EQ(parallel.paths.size(), serial.paths.size());
        for (std::size_t p = 0; p < serial.paths.size(); ++p) {
            SCOPED_TRACE(serial.paths[p].name + " @ " + std::to_string(threads) + " threads");
            EXPECT_EQ(parallel.paths[p].ber.errors(), serial.paths[p].ber.errors());
            EXPECT_EQ(parallel.paths[p].ber.total_bits(), serial.paths[p].ber.total_bits());
            EXPECT_EQ(parallel.paths[p].exact_frames, serial.paths[p].exact_frames);
            // Bit-identical, not just close: the serial use-order aggregation
            // must make the sum independent of scheduling.
            EXPECT_EQ(parallel.paths[p].sum_ml_cost, serial.paths[p].sum_ml_cost);
        }
    }
}

// Golden values recorded from the pre-registry (enum-dispatch) link
// simulator at commit b461477, via a standalone dump of this exact config —
// the redesign must not change a single statistic.  Integer statistics are
// exact; summed double costs are compared to a relative 1e-9 (identical
// operation order on identical inputs, with headroom for FMA contraction
// differences across compilers).
struct golden_row {
    const char* query;
    std::size_t errors;
    std::size_t total_bits;
    std::size_t exact_frames;
    double sum_ml_cost;
};

void expect_golden(const lk::link_report& report, const golden_row& want) {
    SCOPED_TRACE(want.query);
    const auto& path = report.path(want.query);
    EXPECT_EQ(path.ber.errors(), want.errors);
    EXPECT_EQ(path.ber.total_bits(), want.total_bits);
    EXPECT_EQ(path.exact_frames, want.exact_frames);
    EXPECT_NEAR(path.sum_ml_cost, want.sum_ml_cost, 1e-9 * want.sum_ml_cost);
}

TEST(LinkSim, GoldenStatisticsMatchEnumImplementation) {
    const golden_row golden[] = {
        {"ZF", 4, 96, 21, 28.866302186627369},
        {"MMSE", 3, 96, 22, 19.799982204356507},
        {"K-best", 0, 96, 24, 11.190680449434273},
        {"SD", 0, 96, 24, 11.190680449434273},
        {"SA", 0, 96, 24, 11.190680449434273},
        {"GS+RA", 0, 96, 24, 11.190680449434273},
    };
    auto config = small_config();
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        config.num_threads = threads;
        const auto report = lk::run_link_simulation(config);
        for (const auto& row : golden) expect_golden(report, row);
    }
}

TEST(LinkSim, GoldenStatisticsMatchEnumImplementationHardScenario) {
    // A noisier 4-user 16-QAM stream where every path produces a distinct
    // statistic (no path is all-exact), so a dispatch or RNG-stream
    // regression in any single path is caught.
    const golden_row golden[] = {
        {"ZF", 48, 256, 2, 380.54334068809885},
        {"MMSE", 37, 256, 5, 140.27658721395753},
        {"K-best", 35, 256, 8, 111.36663255406008},
        {"SD", 30, 256, 9, 78.790187337827376},
        {"SA", 25, 256, 8, 100.86800242586055},
        {"GS+RA", 27, 256, 10, 82.485979987233051},
    };
    lk::link_config config;
    config.num_uses = 16;
    config.num_users = 4;
    config.mod = wl::modulation::qam16;
    config.snr_db = 14.0;
    config.paths = pt::parse_spec_list(
        "zf,mmse,kbest:width=4,sphere,sa:reads=3,sweeps=30,gsra:reads=8");
    config.seed = 2026;
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        config.num_threads = threads;
        const auto report = lk::run_link_simulation(config);
        for (const auto& row : golden) expect_golden(report, row);
    }
}

TEST(LinkSim, SpherePathIsExactOnNoiselessPaperCorpus) {
    auto config = small_config();
    config.noiseless = true;
    config.channel = wl::channel_model::unit_gain_random_phase;
    config.paths = pt::parse_spec_list("sphere");
    const auto report = lk::run_link_simulation(config);
    const auto& sd = report.path("sphere");
    EXPECT_EQ(sd.ber.errors(), 0u);
    EXPECT_EQ(sd.exact_frames, config.num_uses);
    EXPECT_NEAR(sd.sum_ml_cost, 0.0, 1e-6);
}

TEST(LinkSim, ReportShapesAndStageComposition) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("zf,sa:reads=4,sweeps=40,gsra:reads=10");
    const auto report = lk::run_link_simulation(config);

    EXPECT_EQ(report.synthesis.count(), config.num_uses);
    EXPECT_EQ(report.reduction.count(), config.num_uses);
    ASSERT_EQ(report.paths.size(), 3u);

    const auto& zf = report.path("zf");
    EXPECT_EQ(zf.stage_names(), (std::vector<std::string>{"synth", "detect"}));
    const auto& sa = report.path("sa");
    EXPECT_EQ(sa.stage_names(), (std::vector<std::string>{"synth", "qubo", "solve"}));
    const auto& hybrid = report.path("gsra");
    EXPECT_EQ(hybrid.stage_names(),
              (std::vector<std::string>{"synth", "qubo", "classical", "quantum"}));

    for (const auto& path : report.paths) {
        EXPECT_EQ(path.ber.total_bits(),
                  config.num_uses * config.num_users * wl::bits_per_symbol(config.mod));
        EXPECT_EQ(path.stage_servers.size(), path.stages.size());
        for (const auto& trace : path.stages) {
            EXPECT_EQ(trace.count(), config.num_uses);
            EXPECT_EQ(trace.replay_sample().size(),
                      std::min<std::size_t>(config.num_uses,
                                            lk::stage_trace::replay_sample_capacity));
            EXPECT_GE(trace.p99_us(), trace.p50_us());
        }
        EXPECT_EQ(path.service.count(), config.num_uses);
        EXPECT_EQ(path.replay.num_jobs, config.num_uses);
        EXPECT_EQ(path.replay.stage_utilization.size(), path.stages.size());
        EXPECT_GT(path.replay.throughput_per_us, 0.0);
    }

    // The hybrid's quantum stage is its programmed occupancy: duration x
    // reads (the spec defaults: s_p = 0.29, t_p = 1 us, 10 reads here).
    const double programmed_us =
        hcq::anneal::anneal_schedule::reverse(0.29, 1.0).duration_us() * 10.0;
    const auto& quantum = hybrid.stages.back();
    EXPECT_DOUBLE_EQ(quantum.max_us(), programmed_us);
    EXPECT_NEAR(quantum.mean_us(), programmed_us, 1e-9 * programmed_us);
    for (const double q_us : quantum.replay_sample()) {
        EXPECT_DOUBLE_EQ(q_us, programmed_us);
    }

    EXPECT_THROW((void)report.path("kbest"), std::out_of_range);
}

TEST(LinkSim, PathLookupMatchesKindNameAndSpec) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("kbest:width=16,gsra:reads=10");
    const auto report = lk::run_link_simulation(config);
    EXPECT_EQ(&report.path("kbest"), &report.paths[0]);
    EXPECT_EQ(&report.path("K-best"), &report.paths[0]);
    EXPECT_EQ(&report.path("kbest:width=16"), &report.paths[0]);
    EXPECT_EQ(&report.path("GS+RA"), &report.paths[1]);
    EXPECT_EQ(report.paths[1].spec, "gsra:reads=10,sp=0.29,pause_us=1,init=gs");
}

TEST(LinkSim, SameKindTwiceWithDifferentKnobsRunsSideBySide) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("kbest:width=1,kbest:width=8");
    const auto report = lk::run_link_simulation(config);
    ASSERT_EQ(report.paths.size(), 2u);
    EXPECT_EQ(report.paths[0].name, report.paths[1].name);
    // The wider beam's surviving set is a superset at every tree level, so
    // its summed ML cost can only be lower on the same uses.
    EXPECT_GE(report.path("kbest:width=1").sum_ml_cost,
              report.path("kbest:width=8").sum_ml_cost);
}

TEST(LinkSim, SummaryTableHasOneRowPerPath) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("zf,gsra:reads=10");
    const auto report = lk::run_link_simulation(config);
    const auto t = lk::summary_table(report);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 13u);  // incl. err burst + replay's drop rate + peak queue
}

TEST(LinkSim, StageTracePercentileSemantics) {
    // Empty trace: nothing to summarise — mean/p50/p99 are all 0.
    const lk::stage_trace empty{"empty"};
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.mean_us(), 0.0);
    EXPECT_EQ(empty.p50_us(), 0.0);
    EXPECT_EQ(empty.p99_us(), 0.0);
    EXPECT_TRUE(empty.replay_sample().empty());

    // Single entry: every percentile is that entry exactly (the digest
    // clamps into [min, max]).
    const lk::stage_trace single{"single", std::vector<double>{42.5}};
    EXPECT_DOUBLE_EQ(single.mean_us(), 42.5);
    EXPECT_DOUBLE_EQ(single.p50_us(), 42.5);
    EXPECT_DOUBLE_EQ(single.p99_us(), 42.5);
    EXPECT_DOUBLE_EQ(single.max_us(), 42.5);

    // Two distinct entries: digest percentiles stay within the data range
    // and keep their ordering; the mean is exact.
    const lk::stage_trace pair{"pair", {10.0, 20.0}};
    EXPECT_DOUBLE_EQ(pair.mean_us(), 15.0);
    EXPECT_GE(pair.p50_us(), 10.0);
    EXPECT_LE(pair.p50_us(), 20.0);
    EXPECT_GE(pair.p99_us(), pair.p50_us());
    EXPECT_LE(pair.p99_us(), 20.0);
    EXPECT_EQ(pair.replay_sample(), (std::vector<double>{10.0, 20.0}));
}

TEST(LinkSim, StageTraceSampleIsBoundedButStatisticsCoverEverything) {
    lk::stage_trace trace{"bounded"};
    const std::size_t n = lk::stage_trace::replay_sample_capacity + 100;
    for (std::size_t i = 0; i < n; ++i) trace.add(static_cast<double>(i % 7) + 1.0);
    EXPECT_EQ(trace.count(), n);
    EXPECT_EQ(trace.replay_sample().size(), lk::stage_trace::replay_sample_capacity);
    EXPECT_DOUBLE_EQ(trace.replay_sample()[3], 4.0);  // stream order preserved
    EXPECT_DOUBLE_EQ(trace.max_us(), 7.0);            // exact over ALL entries
}

TEST(LinkSim, StageTraceStrideSpreadsTheSampleAcrossTheStream) {
    // With a stride the sample covers the whole stream uniformly instead of
    // just the warm-up head: entry i is kept iff i % stride == 0.
    lk::stage_trace strided{"strided", 4};
    for (std::size_t i = 0; i < 16; ++i) strided.add(static_cast<double>(i));
    EXPECT_EQ(strided.count(), 16u);
    EXPECT_EQ(strided.replay_sample(), (std::vector<double>{0.0, 4.0, 8.0, 12.0}));
    EXPECT_DOUBLE_EQ(strided.max_us(), 15.0);  // digest still sees everything
}

TEST(LinkSim, KxraStatisticsIdenticalToGsra) {
    // The acceptance criterion: K interchangeable (emulated) annealer
    // devices round-robining one stream must produce the same detection
    // statistics as the single-device hybrid with the same knobs — every
    // (use, path) cell draws from the same derived RNG stream, device
    // multiplicity only changes the pipeline replay.
    auto config = small_config();
    config.paths = pt::parse_spec_list("gsra:reads=10");
    const auto gsra = lk::run_link_simulation(config);
    config.paths = pt::parse_spec_list("kxra:k=2,reads=10");
    const auto kxra = lk::run_link_simulation(config);

    const auto& g = gsra.path("gsra");
    const auto& k = kxra.path("kxra");
    EXPECT_EQ(k.ber.errors(), g.ber.errors());
    EXPECT_EQ(k.ber.total_bits(), g.ber.total_bits());
    EXPECT_EQ(k.exact_frames, g.exact_frames);
    EXPECT_EQ(k.sum_ml_cost, g.sum_ml_cost);

    // The replay serves the quantum stage with 2 round-robin devices.  (The
    // resulting throughput gain is pinned deterministically in
    // pipeline_test's MultiServer suite — comparing two separately-paced
    // replays here would depend on wall-clock noise.)
    EXPECT_EQ(k.stage_servers, (std::vector<std::size_t>{1, 1, 1, 2}));
    EXPECT_EQ(g.stage_servers, (std::vector<std::size_t>{1, 1, 1, 1}));
    EXPECT_EQ(k.name, "GS+RAx2");
    EXPECT_EQ(k.spec, "kxra:k=2,reads=10,sp=0.29,pause_us=1,init=gs");
}

TEST(LinkSim, GsraInitUnsetIsBitIdenticalToExplicitGs) {
    // ROADMAP: the init key is golden-pinned to the default initialiser
    // when unset — "gsra" and "gsra:init=gs" canonicalise identically and
    // produce the same statistics (the goldens above additionally pin that
    // this IS the pre-init-key behaviour).
    auto config = small_config();
    config.paths = pt::parse_spec_list("gsra:reads=10");
    const auto unset = lk::run_link_simulation(config);
    config.paths = pt::parse_spec_list("gsra:reads=10,init=gs");
    const auto explicit_gs = lk::run_link_simulation(config);
    EXPECT_EQ(unset.paths[0].spec, explicit_gs.paths[0].spec);
    EXPECT_EQ(unset.paths[0].ber.errors(), explicit_gs.paths[0].ber.errors());
    EXPECT_EQ(unset.paths[0].exact_frames, explicit_gs.paths[0].exact_frames);
    EXPECT_EQ(unset.paths[0].sum_ml_cost, explicit_gs.paths[0].sum_ml_cost);
}

TEST(LinkSim, GsraInitialiserVariantsRunSideBySide) {
    // Different init values canonicalise differently, so the three hybrid
    // flavours are a legitimate side-by-side comparison in one stream.
    lk::link_config config;
    config.num_uses = 12;
    config.num_users = 4;
    config.mod = wl::modulation::qam16;
    config.snr_db = 14.0;
    config.seed = 2026;
    config.num_threads = 1;
    config.paths = pt::parse_spec_list(
        "gsra:reads=8,gsra:reads=8,init=tabu,gsra:reads=8,init=kbest");
    const auto report = lk::run_link_simulation(config);
    ASSERT_EQ(report.paths.size(), 3u);
    EXPECT_EQ(report.paths[0].name, "GS+RA");
    EXPECT_EQ(report.paths[1].name, "Tabu+RA");
    EXPECT_EQ(report.paths[2].name, "KB+RA");
    for (const auto& path : report.paths) {
        EXPECT_EQ(path.stage_names(),
                  (std::vector<std::string>{"synth", "qubo", "classical", "quantum"}));
        EXPECT_EQ(path.ber.total_bits(), 12u * 4u * 4u);
    }
}

TEST(LinkSim, StreamBlockSizeDoesNotChangeStatistics) {
    // Window-by-window aggregation must be invisible: derived RNG streams
    // are indexed by the global use index and the fold is serial in use
    // order, so any block size yields bit-identical statistics.
    auto config = small_config();
    config.stream_block = 1024;
    const auto big = lk::run_link_simulation(config);
    for (const std::size_t block : {1UL, 5UL, 7UL}) {
        SCOPED_TRACE("stream_block " + std::to_string(block));
        config.stream_block = block;
        const auto windowed = lk::run_link_simulation(config);
        ASSERT_EQ(windowed.paths.size(), big.paths.size());
        for (std::size_t p = 0; p < big.paths.size(); ++p) {
            EXPECT_EQ(windowed.paths[p].ber.errors(), big.paths[p].ber.errors());
            EXPECT_EQ(windowed.paths[p].exact_frames, big.paths[p].exact_frames);
            EXPECT_EQ(windowed.paths[p].sum_ml_cost, big.paths[p].sum_ml_cost);
        }
    }
}

TEST(LinkSim, BoundedReplayReportsDropsAndOccupancy) {
    auto config = small_config();
    config.paths = pt::parse_spec_list("sa:reads=4,sweeps=40");
    config.offered_load = 4.0;  // far past saturation
    config.buffer_capacity = 1;
    config.policy = hcq::pipeline::backpressure::drop_newest;
    const auto report = lk::run_link_simulation(config);
    const auto& replay = report.path("sa").replay;
    EXPECT_EQ(replay.num_jobs, config.num_uses);
    EXPECT_EQ(replay.jobs_completed + replay.jobs_dropped, config.num_uses);
    EXPECT_GT(replay.jobs_dropped, 0u);
    EXPECT_GT(replay.drop_rate, 0.0);
    EXPECT_LT(replay.drop_rate, 1.0);
    std::size_t stage_drop_sum = 0;
    for (const std::size_t d : replay.stage_drops) stage_drop_sum += d;
    EXPECT_EQ(stage_drop_sum, replay.jobs_dropped);
    bool some_queue = false;
    for (const std::size_t q : replay.max_queue_len) {
        EXPECT_LE(q, config.buffer_capacity);
        some_queue = some_queue || q > 0;
    }
    EXPECT_TRUE(some_queue);
    // Constant-memory replay: no per-job latency vector.
    EXPECT_TRUE(replay.latencies_us.empty());
}

TEST(LinkSim, ConfigValidation) {
    {
        auto config = small_config();
        config.num_uses = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.num_users = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = {};
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.offered_load = 0.0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // Exact duplicates are rejected...
        auto config = small_config();
        config.paths = pt::parse_spec_list("zf,zf");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // ...including via canonicalisation: "kbest" IS "kbest:width=8".
        auto config = small_config();
        config.paths = pt::parse_spec_list("kbest,kbest:width=8");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("warp-drive");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("kbest:width=0");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("gsra:reads=0");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.paths = pt::parse_spec_list("kxra:k=0");
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // Buffer capacity 0 could never admit a job — rejected up front.
        auto config = small_config();
        config.buffer_capacity = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        auto config = small_config();
        config.stream_block = 0;
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
    {
        // A malformed channel spec is rejected like a malformed path spec.
        auto config = small_config();
        // hcq-lint: allow(channel-spec-literal) hand-built to prove re-validation
        config.channel_spec = wl::channel_spec{};
        config.channel_spec->kind = "jakes";
        config.channel_spec->doppler_hz = -4.0;  // hand-built, bypassing parse
        EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
    }
}

// ---------------------------------------------------------------------------
// Realistic channels (--channel specs): determinism, golden equivalence,
// burst structure, imperfect CSI
// ---------------------------------------------------------------------------

TEST(LinkChannel, ExplicitRayleighSpecIsBitIdenticalToUnset) {
    // The new golden of this PR: `--channel rayleigh` (est_err unset) must
    // reproduce the legacy i.i.d. draw byte-for-byte, so every existing
    // golden test and bench baseline stays valid with --channel unset.
    auto config = small_config();
    const auto legacy = lk::run_link_simulation(config);
    config.channel_spec = wl::channel_spec::parse("rayleigh");
    const auto spec_run = lk::run_link_simulation(config);
    ASSERT_EQ(spec_run.paths.size(), legacy.paths.size());
    for (std::size_t p = 0; p < legacy.paths.size(); ++p) {
        SCOPED_TRACE(legacy.paths[p].name);
        EXPECT_EQ(spec_run.paths[p].ber.errors(), legacy.paths[p].ber.errors());
        EXPECT_EQ(spec_run.paths[p].ber.total_bits(), legacy.paths[p].ber.total_bits());
        EXPECT_EQ(spec_run.paths[p].exact_frames, legacy.paths[p].exact_frames);
        EXPECT_EQ(spec_run.paths[p].sum_ml_cost, legacy.paths[p].sum_ml_cost);
        EXPECT_EQ(spec_run.paths[p].bursts.error_frames, legacy.paths[p].bursts.error_frames);
        EXPECT_EQ(spec_run.paths[p].bursts.bursts, legacy.paths[p].bursts.bursts);
        EXPECT_EQ(spec_run.paths[p].bursts.longest_burst,
                  legacy.paths[p].bursts.longest_burst);
    }
}

TEST(LinkChannel, CorrelatedFadingStatisticsBitIdenticalAcrossThreads) {
    // The tentpole determinism claim: the frozen sum-of-sinusoids processes
    // make correlated-channel statistics — including burst structure and
    // ARQ counters — bit-identical at any thread count.
    auto config = small_config();
    config.num_uses = 48;
    config.paths = pt::parse_spec_list("zf,gsra:reads=8");
    config.channel_spec = wl::channel_spec::parse("jakes:doppler_hz=5,est_err=0.02");
    config.arq = hcq::arq::parse_arq("max_retx=2");
    config.num_threads = 1;
    const auto serial = lk::run_link_simulation(config);
    for (const std::size_t threads : {2UL, 8UL}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        config.num_threads = threads;
        const auto parallel = lk::run_link_simulation(config);
        ASSERT_EQ(parallel.paths.size(), serial.paths.size());
        for (std::size_t p = 0; p < serial.paths.size(); ++p) {
            SCOPED_TRACE(serial.paths[p].name);
            EXPECT_EQ(parallel.paths[p].ber.errors(), serial.paths[p].ber.errors());
            EXPECT_EQ(parallel.paths[p].exact_frames, serial.paths[p].exact_frames);
            EXPECT_EQ(parallel.paths[p].sum_ml_cost, serial.paths[p].sum_ml_cost);
            EXPECT_EQ(parallel.paths[p].bursts.longest_burst,
                      serial.paths[p].bursts.longest_burst);
            EXPECT_EQ(parallel.paths[p].bursts.bursts, serial.paths[p].bursts.bursts);
            const auto& serial_arq = serial.paths[p].arq->counters;
            const auto& parallel_arq = parallel.paths[p].arq->counters;
            EXPECT_EQ(parallel_arq.attempts, serial_arq.attempts);
            EXPECT_EQ(parallel_arq.wrong_attempts, serial_arq.wrong_attempts);
            EXPECT_EQ(parallel_arq.corrected_frames, serial_arq.corrected_frames);
            EXPECT_EQ(parallel_arq.residual_errors, serial_arq.residual_errors);
        }
    }
}

TEST(LinkChannel, CorrelatedFadingStatisticsInvariantToStreamBlock) {
    auto config = small_config();
    config.num_uses = 40;
    config.paths = pt::parse_spec_list("zf");
    config.channel_spec = wl::channel_spec::parse("watterson:taps=2,spread_hz=3");
    config.arq = hcq::arq::parse_arq("max_retx=1");
    config.stream_block = 1024;
    const auto big = lk::run_link_simulation(config);
    for (const std::size_t block : {1UL, 3UL, 7UL}) {
        SCOPED_TRACE("stream_block " + std::to_string(block));
        config.stream_block = block;
        const auto windowed = lk::run_link_simulation(config);
        EXPECT_EQ(windowed.paths[0].ber.errors(), big.paths[0].ber.errors());
        EXPECT_EQ(windowed.paths[0].sum_ml_cost, big.paths[0].sum_ml_cost);
        // Burst runs span window boundaries; the carry across folds must
        // make them block-invariant too.
        EXPECT_EQ(windowed.paths[0].bursts.bursts, big.paths[0].bursts.bursts);
        EXPECT_EQ(windowed.paths[0].bursts.longest_burst, big.paths[0].bursts.longest_burst);
        EXPECT_EQ(windowed.paths[0].arq->counters.attempts, big.paths[0].arq->counters.attempts);
        EXPECT_EQ(windowed.paths[0].arq->counters.residual_errors,
                  big.paths[0].arq->counters.residual_errors);
    }
}

TEST(LinkChannel, ArqRetransmissionsDrawFromFrameAttemptDomainUnderFading) {
    // Enabling ARQ must not perturb any open-loop statistic under fading:
    // retransmission synthesis draws live in the (frame, attempt)-derived
    // arq domains and the fading process is evaluated closed-form, so the
    // open-loop BER/ML-cost stream is untouched.
    auto config = small_config();
    config.paths = pt::parse_spec_list("zf,gsra:reads=8");
    config.channel_spec = wl::channel_spec::parse("jakes:doppler_hz=5");
    const auto open = lk::run_link_simulation(config);
    config.arq = hcq::arq::parse_arq("max_retx=2");
    const auto closed = lk::run_link_simulation(config);
    for (std::size_t p = 0; p < open.paths.size(); ++p) {
        SCOPED_TRACE(open.paths[p].name);
        EXPECT_EQ(closed.paths[p].ber.errors(), open.paths[p].ber.errors());
        EXPECT_EQ(closed.paths[p].exact_frames, open.paths[p].exact_frames);
        EXPECT_EQ(closed.paths[p].sum_ml_cost, open.paths[p].sum_ml_cost);
        // And the chain bookkeeping is consistent.
        const auto& counters = closed.paths[p].arq->counters;
        EXPECT_EQ(counters.frames, config.num_uses);
        EXPECT_GE(counters.attempts, counters.frames);
        EXPECT_LE(counters.attempts, counters.frames * 3);  // max_retx=2
    }
}

TEST(LinkChannel, LowDopplerConcentratesRetransmissionFailures) {
    // The acceptance scenario's mechanism, asserted deterministically: at
    // doppler_hz=5 (coherence >> retx lag) a frame that failed in a fade
    // retries INSIDE the fade, so retransmissions rescue a smaller fraction
    // of failed frames than on the i.i.d. channel, where every retry is a
    // fresh draw.  Compared via the residual fraction of ARQ-engaged frames:
    // residual / (residual + corrected).
    // 21 dB keeps the i.i.d. baseline in the retries-usually-rescue regime
    // (stuck fraction ~0.10) while deep slow fades stay lethal (~0.44) —
    // measured margins of ~4x against both asserted factors of 2.
    lk::link_config config;
    config.num_uses = 600;
    config.num_users = 2;
    config.mod = wl::modulation::qam16;
    config.snr_db = 21.0;
    config.paths = pt::parse_spec_list("zf");
    config.seed = 7;
    config.arq = hcq::arq::parse_arq("max_retx=1");

    config.channel_spec = wl::channel_spec::parse("jakes:doppler_hz=5");
    const auto slow = lk::run_link_simulation(config);
    config.channel_spec = wl::channel_spec::parse("rayleigh");
    const auto iid = lk::run_link_simulation(config);

    const auto stuck_fraction = [](const hcq::arq::counters& c) {
        const auto engaged = c.residual_errors + c.corrected_frames;
        return engaged == 0 ? 0.0
                            : static_cast<double>(c.residual_errors) /
                                  static_cast<double>(engaged);
    };
    const auto& slow_arq = slow.paths[0].arq->counters;
    const auto& iid_arq = iid.paths[0].arq->counters;
    ASSERT_GT(slow_arq.residual_errors + slow_arq.corrected_frames, 20u);
    ASSERT_GT(iid_arq.residual_errors + iid_arq.corrected_frames, 20u);
    EXPECT_GT(stuck_fraction(slow_arq), 2.0 * stuck_fraction(iid_arq));
    // The burst structure itself: the slow-fading error runs dwarf i.i.d.
    EXPECT_GT(slow.paths[0].bursts.longest_burst, 2 * iid.paths[0].bursts.longest_burst);
    EXPECT_GT(slow.paths[0].bursts.mean_burst_length(),
              iid.paths[0].bursts.mean_burst_length());
}

TEST(LinkChannel, ImperfectCsiDegradesDetection) {
    // Detectors solving against H_est while the channel applied H_true must
    // do worse than with perfect CSI, monotonically in est_err.
    lk::link_config config;
    config.num_uses = 300;
    config.num_users = 2;
    config.mod = wl::modulation::qam16;
    config.snr_db = 18.0;
    config.paths = pt::parse_spec_list("zf");
    config.seed = 21;
    config.channel_spec = wl::channel_spec::parse("rayleigh");
    const auto perfect = lk::run_link_simulation(config);
    config.channel_spec = wl::channel_spec::parse("rayleigh:est_err=0.1");
    const auto noisy_csi = lk::run_link_simulation(config);
    EXPECT_GT(noisy_csi.paths[0].ber.errors(), perfect.paths[0].ber.errors());
}

TEST(LinkChannel, SpecSnrOverrideBeatsConfigSnr) {
    // snr_db inside the spec overrides link_config::snr_db: running with a
    // config SNR of 30 dB but a spec SNR of 30 dB must equal a plain 30 dB
    // run, and differ from config-only 8 dB.
    auto config = small_config();
    config.paths = pt::parse_spec_list("zf");
    config.snr_db = 30.0;
    config.channel_spec = wl::channel_spec::parse("rayleigh");
    const auto high = lk::run_link_simulation(config);
    config.snr_db = 8.0;
    config.channel_spec = wl::channel_spec::parse("rayleigh:snr_db=30");
    const auto overridden = lk::run_link_simulation(config);
    EXPECT_EQ(overridden.paths[0].ber.errors(), high.paths[0].ber.errors());
    EXPECT_EQ(overridden.paths[0].sum_ml_cost, high.paths[0].sum_ml_cost);
    config.channel_spec = wl::channel_spec::parse("rayleigh");
    const auto low = lk::run_link_simulation(config);
    EXPECT_GE(low.paths[0].ber.errors(), overridden.paths[0].ber.errors());
}

// ---------------------------------------------------------------------------
// Coded link (link_config::fec): the soft chain end to end
// ---------------------------------------------------------------------------

// The fixed gate config of the coded A/B tests: correlated fading bursty
// enough that the interleaver + soft Viterbi visibly pay off.
lk::link_config coded_gate_config() {
    lk::link_config config;
    config.num_uses = 120;
    config.num_users = 4;
    config.mod = wl::modulation::qam16;
    config.snr_db = 10.0;
    config.channel_spec = wl::channel_spec::parse("jakes:doppler_hz=40");
    config.paths = pt::parse_spec_list("zf,kbest");
    config.seed = 7;
    config.fec = hcq::fec::code_spec::parse("k5:interleave=8x8");  // 4 uses/frame
    return config;
}

TEST(LinkFec, ReportCarriesFecStatisticsIffConfigured) {
    auto config = coded_gate_config();
    const auto coded = lk::run_link_simulation(config);
    for (const auto& path : coded.paths) {
        ASSERT_TRUE(path.fec.has_value()) << path.name;
        EXPECT_EQ(path.fec->frames, config.num_uses / 4);  // whole frames
        EXPECT_LE(path.fec->frame_errors, path.fec->frames);
        EXPECT_EQ(path.fec->info_ber.total_bits(),
                  path.fec->frames * config.fec->info_bits());
    }
    config.fec.reset();
    const auto uncoded = lk::run_link_simulation(config);
    for (const auto& path : uncoded.paths) EXPECT_FALSE(path.fec.has_value());
}

TEST(LinkFec, CodedFerBeatsUncodedFrameErrorRateUnderFading) {
    // The point of the whole chain: at the gate config the coded link's
    // frame error rate must land below the uncoded per-use error rate the
    // same detectors deliver on the same channel realisations.
    const auto config = coded_gate_config();
    const auto report = lk::run_link_simulation(config);
    for (const auto& path : report.paths) {
        SCOPED_TRACE(path.name);
        const double uncoded_use_fer =
            1.0 - static_cast<double>(path.exact_frames) /
                      static_cast<double>(config.num_uses);
        EXPECT_LT(path.fec->coded_fer(), uncoded_use_fer);
        // And the decoded information bits beat the raw detected bits.
        EXPECT_LT(path.fec->info_ber.rate(), path.ber.rate());
    }
}

TEST(LinkFec, ChaseCombiningBeatsPlainArqAtFixedSeeds) {
    // Hybrid ARQ: chase (accumulate LLRs across attempts, decode the
    // combined frame) versus plain (each attempt decodes alone) on the same
    // seeds.  Chase must deliver no more residual frame errors anywhere and
    // strictly fewer somewhere.
    auto config = coded_gate_config();
    config.arq = hcq::arq::parse_arq("max_retx=2");
    config.arq->combining = hcq::arq::combining_mode::chase;
    const auto chase = lk::run_link_simulation(config);
    config.arq->combining = hcq::arq::combining_mode::plain;
    const auto plain = lk::run_link_simulation(config);
    std::size_t strictly_better = 0;
    for (std::size_t p = 0; p < chase.paths.size(); ++p) {
        SCOPED_TRACE(chase.paths[p].name);
        const auto& ca = chase.paths[p].arq->counters;
        const auto& pa = plain.paths[p].arq->counters;
        EXPECT_LE(ca.residual_errors, pa.residual_errors);
        EXPECT_LE(ca.attempts, pa.attempts);  // combining converges sooner
        strictly_better += ca.residual_errors < pa.residual_errors;
    }
    EXPECT_GE(strictly_better, 1u);
}

TEST(LinkFec, CodedStatisticsBitIdenticalAcrossThreadsAndStreamBlock) {
    auto config = coded_gate_config();
    config.snr_db = 11.0;
    config.paths = pt::parse_spec_list("zf,kbest,gsra");
    config.arq = hcq::arq::parse_arq("max_retx=2");

    config.num_threads = 1;
    const auto serial = lk::run_link_simulation(config);
    const auto expect_same = [&](const lk::link_report& other, const char* what) {
        ASSERT_EQ(other.paths.size(), serial.paths.size());
        for (std::size_t p = 0; p < serial.paths.size(); ++p) {
            SCOPED_TRACE(std::string(what) + " " + serial.paths[p].name);
            EXPECT_EQ(other.paths[p].ber.errors(), serial.paths[p].ber.errors());
            EXPECT_EQ(other.paths[p].fec->frame_errors, serial.paths[p].fec->frame_errors);
            EXPECT_EQ(other.paths[p].fec->info_ber.errors(),
                      serial.paths[p].fec->info_ber.errors());
            EXPECT_EQ(other.paths[p].arq->counters.attempts,
                      serial.paths[p].arq->counters.attempts);
            EXPECT_EQ(other.paths[p].arq->counters.residual_errors,
                      serial.paths[p].arq->counters.residual_errors);
            EXPECT_EQ(other.paths[p].arq->counters.corrected_frames,
                      serial.paths[p].arq->counters.corrected_frames);
        }
    };
    for (const std::size_t threads : {2UL, 8UL}) {
        config.num_threads = threads;
        expect_same(lk::run_link_simulation(config), "threads");
    }
    config.num_threads = 8;
    for (const std::size_t block : {3UL, 40UL}) {
        config.stream_block = block;
        expect_same(lk::run_link_simulation(config), "stream_block");
    }
}

TEST(LinkFec, PartialFrameGeometryThrows) {
    auto config = coded_gate_config();
    config.num_uses = 5;  // 4 uses/frame: a partial trailing frame
    EXPECT_THROW((void)lk::run_link_simulation(config), std::invalid_argument);
}

}  // namespace
