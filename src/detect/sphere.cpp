#include "detect/sphere.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "detect/real_model.h"
#include "detect/scratch.h"
#include "util/timer.h"

namespace hcq::detect {

namespace {

/// DFS state shared across recursion levels.  The chosen/best/per-level
/// order buffers live in the caller's lattice_scratch so a warmed-up search
/// never allocates.
struct search_state {
    const real_model* model = nullptr;
    std::vector<double>* chosen = nullptr;  // amplitude per dimension
    std::vector<double>* best = nullptr;    // best leaf found
    std::vector<std::vector<double>>* level_order = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    std::size_t nodes = 0;
};

/// Expands dimension `level` (levels run dims-1 .. 0), with `partial_cost`
/// accumulated from higher levels.
void descend(search_state& state, std::size_t level, double partial_cost) {
    const auto& m = *state.model;
    std::vector<double>& chosen = *state.chosen;
    // Unconstrained center of this level given the higher-level choices.
    double acc = m.y_eff[level];
    for (std::size_t j = level + 1; j < m.dims; ++j) {
        acc -= m.r(level, j) * chosen[j];
    }
    const double diag = m.r(level, level);
    const double center = acc / diag;

    // Schnorr-Euchner: visit alphabet points by increasing distance from the
    // center, so the first leaf is the Babai point and pruning kicks in fast.
    // Each recursion level owns one reusable ordering buffer.
    std::vector<double>& order = (*state.level_order)[level];
    order.assign(m.alphabet.begin(), m.alphabet.end());
    std::sort(order.begin(), order.end(), [center](double a, double b) {
        return std::fabs(a - center) < std::fabs(b - center);
    });

    for (const double amplitude : order) {
        const double residual = acc - diag * amplitude;
        const double cost = partial_cost + residual * residual;
        if (cost >= state.best_cost) {
            // SE order is monotone in per-level cost: nothing further helps.
            break;
        }
        ++state.nodes;
        chosen[level] = amplitude;
        if (level == 0) {
            state.best_cost = cost;
            *state.best = chosen;
        } else {
            descend(state, level - 1, cost);
        }
    }
}

}  // namespace

sphere_detector::sphere_detector(double initial_radius_sq)
    : initial_radius_sq_(initial_radius_sq) {}

detection_result sphere_detector::detect(const wireless::mimo_instance& instance) const {
    detect_scratch scratch;
    detection_result result;
    detect_into(instance, scratch, result);
    return result;
}

void sphere_detector::detect_into(const wireless::mimo_instance& instance,
                                  detect_scratch& scratch, detection_result& out) const {
    const util::timer clock;
    lattice_scratch& lat = scratch.lattice;
    const real_model& model = make_real_model_into(instance, lat);
    if (lat.level_order.size() < model.dims) lat.level_order.resize(model.dims);

    search_state state;
    state.model = &model;
    state.chosen = &lat.chosen;
    state.best = &lat.best;
    state.level_order = &lat.level_order;
    lat.chosen.assign(model.dims, 0.0);
    lat.best.assign(model.dims, 0.0);
    if (initial_radius_sq_ > 0.0) state.best_cost = initial_radius_sq_;

    descend(state, model.dims - 1, 0.0);

    if (!std::isfinite(state.best_cost)) {
        // Radius too small: fall back to the Babai (greedy slicing) solution
        // obtained with an unbounded radius.
        search_state fallback;
        fallback.model = &model;
        fallback.chosen = &lat.chosen;
        fallback.best = &lat.best;
        fallback.level_order = &lat.level_order;
        lat.chosen.assign(model.dims, 0.0);
        lat.best.assign(model.dims, 0.0);
        descend(fallback, model.dims - 1, 0.0);
        state.best_cost = fallback.best_cost;
        state.nodes = fallback.nodes;
    }

    assemble_result_into(instance, lat.best, state.nodes, scratch.residual, out);
    out.elapsed_us = clock.elapsed_us();
}

}  // namespace hcq::detect
