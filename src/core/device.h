// The annealer emulator — this library's substitute for the D-Wave 2000Q
// (see DESIGN.md, "Hardware substitution").
//
// The device executes an anneal_schedule by integrating Metropolis
// single-spin-flip dynamics whose instantaneous temperature follows the
// schedule's fluctuation strength: at time t it runs one sweep at
// T(s(t)) = temperature_scale * max|Q| * f(s(t)), with `sweeps_per_us`
// sweeps per microsecond of programmed schedule time.  Consequences that
// mirror the physical device:
//   * a schedule starting at s = 0 begins from a uniformly random state
//     (measuring the fully quantum state returns a random bitstring);
//   * a schedule starting at s = 1 *requires* a programmed classical initial
//     state — reverse annealing's defining input;
//   * at s = 1 fluctuations vanish and the state is a frozen classical
//     register, which is what a read returns.
#ifndef HCQ_CORE_DEVICE_H
#define HCQ_CORE_DEVICE_H

#include <optional>

#include "classical/sample_set.h"
#include "classical/solver.h"
#include "core/schedule.h"
#include "core/temperature.h"
#include "qubo/model.h"
#include "util/rng.h"

namespace hcq::anneal {

/// Emulated-device parameters.
struct annealer_config {
    /// Dynamics granularity: Metropolis sweeps per microsecond of schedule
    /// time.  Kept deliberately low — a ~1 us hardware anneal affords few
    /// thermal relaxation events, which is why hardware FA is weak; a large
    /// value here would turn every schedule into a competent simulated
    /// annealer and erase the hybrid advantage the paper measures.
    double sweeps_per_us = 24.0;
    /// Fluctuation-to-temperature scale relative to max|Q| (see
    /// core/temperature.h).  Calibrated against the barrier spectrum of the
    /// paper's 8-user 16-QAM QUBOs so the useful s_p window falls mid-range,
    /// as on hardware (see DESIGN.md and the anneal-ablation bench).
    double temperature_scale = 0.006;
    /// Shape of the fluctuation map.
    temperature_map map{};
    /// Freezing: when T(s) drops below freeze_fraction * max|Q| the state is
    /// a frozen classical register and dynamics STOP (no moves at all).
    /// This mirrors the physical device — at s ~ 1 quantum fluctuations are
    /// suppressed and the register cannot even relax downhill.  Allowing
    /// zero-temperature descent here instead would hand every schedule a
    /// free local-search polish and erase the s_p dependence the paper
    /// measures (see the anneal-ablation bench, which quantifies exactly
    /// this design choice).
    double freeze_fraction = 0.002;
    /// Analog control error ("ICE" on D-Wave hardware): each programmed
    /// coefficient is independently perturbed per read by Gaussian noise of
    /// standard deviation control_noise * max|Q|.  0 disables.
    double control_noise = 0.0;
    /// Probability that each qubit's final read-out is flipped.  0 disables.
    double readout_flip_probability = 0.0;
};

/// Schedule-driven QUBO sampler emulating an analog quantum annealer.
class annealer_emulator {
public:
    explicit annealer_emulator(annealer_config config = {});

    /// One anneal: executes `schedule` and returns the measured state.
    /// `initial` is required (non-nullopt) iff the schedule starts classical
    /// (reverse annealing); forward-start schedules ignore it.
    [[nodiscard]] qubo::bit_vector anneal_once(
        const qubo::qubo_model& q, const anneal_schedule& schedule, util::rng& rng,
        const std::optional<qubo::bit_vector>& initial = std::nullopt) const;

    /// num_reads independent anneals (each from the same initial state for
    /// reverse schedules, as on hardware).  Internally derives one RNG
    /// stream per read, so results are independent of read order.
    [[nodiscard]] solvers::sample_set sample(
        const qubo::qubo_model& q, const anneal_schedule& schedule, std::size_t num_reads,
        util::rng& rng, const std::optional<qubo::bit_vector>& initial = std::nullopt) const;

    /// anneal_once into a reused buffer (same RNG draws, same state);
    /// `initial` may be nullptr for forward-start schedules.  Uses
    /// scratch.engine and scratch.bits_a; with the default config (no control
    /// noise) a warmed-up call performs no allocations.
    void anneal_once_into(const qubo::qubo_model& q, const anneal_schedule& schedule,
                          util::rng& rng, const qubo::bit_vector* initial,
                          solvers::solve_scratch& scratch, qubo::bit_vector& out) const;

    /// sample() keeping only the winning read, written into `best` (reused
    /// buffer), returning its energy.  Identical RNG streams and identical
    /// selection to sample(...).best() — the first strictly-lowest read wins.
    double sample_best_into(const qubo::qubo_model& q, const anneal_schedule& schedule,
                            std::size_t num_reads, util::rng& rng,
                            const qubo::bit_vector* initial, solvers::solve_scratch& scratch,
                            qubo::bit_vector& best) const;

    /// Number of Metropolis sweeps a schedule maps to (>= 1).
    [[nodiscard]] std::size_t sweeps_for(const anneal_schedule& schedule) const;

    [[nodiscard]] const annealer_config& config() const noexcept { return config_; }

private:
    annealer_config config_;
};

}  // namespace hcq::anneal

#endif  // HCQ_CORE_DEVICE_H
