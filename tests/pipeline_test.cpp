// Tests for the Figure-2 pipeline simulator (tandem queue of classical and
// quantum stages).
#include <gtest/gtest.h>

#include "pipeline/pipeline.h"
#include "util/rng.h"

namespace {

namespace pl = hcq::pipeline;

TEST(Stage, ConstantServiceTime) {
    hcq::util::rng rng(1);
    const auto s = pl::stage::constant("c", 5.0);
    EXPECT_EQ(s.name(), "c");
    EXPECT_DOUBLE_EQ(s.service_us(0, rng), 5.0);
    EXPECT_DOUBLE_EQ(s.service_us(99, rng), 5.0);
    EXPECT_THROW((void)pl::stage::constant("bad", -1.0), std::invalid_argument);
}

TEST(Stage, LognormalPositiveAndSpread) {
    hcq::util::rng rng(2);
    const auto s = pl::stage::lognormal("ln", 10.0, 0.5);
    double lo = 1e300;
    double hi = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double v = s.service_us(i, rng);
        EXPECT_GT(v, 0.0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(lo, 10.0);
    EXPECT_GT(hi, 10.0);
    EXPECT_THROW((void)pl::stage::lognormal("bad", 0.0, 0.5), std::invalid_argument);
}

TEST(Simulate, SingleJobLatencyIsSumOfServices) {
    hcq::util::rng rng(3);
    const std::vector<pl::stage> stages{pl::stage::constant("a", 2.0),
                                        pl::stage::constant("b", 3.0)};
    const auto result = pl::simulate(stages, 1, {.interarrival_us = 10.0}, rng);
    EXPECT_EQ(result.num_jobs, 1u);
    EXPECT_DOUBLE_EQ(result.mean_latency_us, 5.0);
    EXPECT_DOUBLE_EQ(result.makespan_us, 5.0);
}

TEST(Simulate, ThroughputLimitedByBottleneck) {
    hcq::util::rng rng(4);
    const std::vector<pl::stage> stages{pl::stage::constant("fast", 1.0),
                                        pl::stage::constant("slow", 8.0)};
    // Arrivals far faster than the bottleneck: throughput -> 1/8 per us.
    const auto result = pl::simulate(stages, 400, {.interarrival_us = 0.5}, rng);
    EXPECT_NEAR(result.throughput_per_us, 1.0 / 8.0, 0.01);
    // The bottleneck stage saturates.
    EXPECT_GT(result.stage_utilization[1], 0.95);
    EXPECT_LT(result.stage_utilization[0], 0.2);
}

TEST(Simulate, NoQueueingWhenArrivalsAreSlow) {
    hcq::util::rng rng(5);
    const std::vector<pl::stage> stages{pl::stage::constant("a", 1.0),
                                        pl::stage::constant("b", 2.0)};
    const auto result = pl::simulate(stages, 100, {.interarrival_us = 10.0}, rng);
    EXPECT_NEAR(result.mean_latency_us, 3.0, 1e-9);
    EXPECT_NEAR(result.mean_queue_wait_us[0], 0.0, 1e-9);
    EXPECT_NEAR(result.mean_queue_wait_us[1], 0.0, 1e-9);
    EXPECT_NEAR(result.p99_latency_us, 3.0, 1e-9);
}

TEST(Simulate, QueueBuildsWhenOverloaded) {
    hcq::util::rng rng(6);
    const std::vector<pl::stage> stages{pl::stage::constant("only", 2.0)};
    const auto result = pl::simulate(stages, 50, {.interarrival_us = 1.0}, rng);
    // Job j waits ~ j * (2 - 1) us: latency grows with position.
    EXPECT_GT(result.max_latency_us, 40.0);
    EXPECT_GT(result.mean_queue_wait_us[0], 10.0);
}

TEST(Simulate, PipeliningOverlapsStages) {
    // Two balanced stages of 2 us each: pipelined completion of n jobs takes
    // ~ 2n + 2, not 4n — the essence of Figure 2.
    hcq::util::rng rng(7);
    const std::vector<pl::stage> stages{pl::stage::constant("cl", 2.0),
                                        pl::stage::constant("qu", 2.0)};
    const auto result = pl::simulate(stages, 100, {.interarrival_us = 0.01}, rng);
    EXPECT_LT(result.makespan_us, 100 * 2.0 + 10.0);
    EXPECT_GT(result.makespan_us, 100 * 2.0 - 10.0);
}

TEST(Simulate, LatencyPercentilesOrdered) {
    hcq::util::rng rng(8);
    const std::vector<pl::stage> stages{pl::stage::lognormal("jitter", 3.0, 0.8)};
    const auto result = pl::simulate(stages, 300, {.interarrival_us = 4.0}, rng);
    EXPECT_LE(result.p50_latency_us, result.p99_latency_us);
    EXPECT_LE(result.p99_latency_us, result.max_latency_us + 1e-12);
    EXPECT_EQ(result.latencies_us.size(), 300u);
}

TEST(Simulate, PoissonArrivalsProduceVariableLatency) {
    hcq::util::rng rng(9);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 1.0)};
    const auto result =
        pl::simulate(stages, 500, {.interarrival_us = 1.2, .poisson = true}, rng);
    // With utilisation ~0.83 there must be queueing some of the time.
    EXPECT_GT(result.p99_latency_us, result.p50_latency_us);
}

TEST(Simulate, Validation) {
    hcq::util::rng rng(10);
    EXPECT_THROW((void)pl::simulate({}, 10, {.interarrival_us = 1.0}, rng),
                 std::invalid_argument);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 1.0)};
    EXPECT_THROW((void)pl::simulate(stages, 0, {.interarrival_us = 1.0}, rng),
                 std::invalid_argument);
    EXPECT_THROW((void)pl::simulate(stages, 10, {.interarrival_us = 0.0}, rng),
                 std::invalid_argument);
}

TEST(Simulate, UtilizationBounded) {
    hcq::util::rng rng(11);
    const std::vector<pl::stage> stages{pl::stage::constant("a", 1.0),
                                        pl::stage::constant("b", 2.0),
                                        pl::stage::constant("c", 0.5)};
    const auto result = pl::simulate(stages, 200, {.interarrival_us = 2.5}, rng);
    for (const double u : result.stage_utilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0 + 1e-9);
    }
}

TEST(HybridStages, BuilderComposesTimes) {
    const auto stages = pl::make_hybrid_stages(3.0, 2.2, 10, 1.5);
    ASSERT_EQ(stages.size(), 2u);
    hcq::util::rng rng(12);
    EXPECT_DOUBLE_EQ(stages[0].service_us(0, rng), 3.0);
    EXPECT_DOUBLE_EQ(stages[1].service_us(0, rng), 1.5 + 22.0);
    EXPECT_EQ(stages[0].name(), "classical");
    EXPECT_EQ(stages[1].name(), "quantum");
    EXPECT_THROW((void)pl::make_hybrid_stages(1.0, 0.0, 10), std::invalid_argument);
    EXPECT_THROW((void)pl::make_hybrid_stages(1.0, 1.0, 0), std::invalid_argument);
}

TEST(Stage, FromTraceReplaysAndCycles) {
    hcq::util::rng rng(20);
    const auto s = pl::stage::from_trace("measured", {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(s.service_us(0, rng), 1.0);
    EXPECT_DOUBLE_EQ(s.service_us(1, rng), 2.0);
    EXPECT_DOUBLE_EQ(s.service_us(2, rng), 3.0);
    EXPECT_DOUBLE_EQ(s.service_us(3, rng), 1.0);  // cycles past the trace end
    EXPECT_DOUBLE_EQ(s.service_us(7, rng), 2.0);
}

TEST(Stage, FromTraceValidation) {
    EXPECT_THROW((void)pl::stage::from_trace("empty", {}), std::invalid_argument);
    EXPECT_THROW((void)pl::stage::from_trace("neg", {1.0, -0.5}), std::invalid_argument);
    EXPECT_THROW((void)pl::stage::from_trace("inf", {1.0, 1.0 / 0.0}), std::invalid_argument);
}

TEST(Simulate, MeasuredTraceMatchesHandComputedLatency) {
    // Two measured stages with slow arrivals: latency of job j is exactly
    // trace_a[j] + trace_b[j].
    hcq::util::rng rng(21);
    const std::vector<pl::stage> stages{pl::stage::from_trace("a", {1.0, 2.0}),
                                        pl::stage::from_trace("b", {4.0, 3.0})};
    const auto result = pl::simulate(stages, 2, {.interarrival_us = 100.0}, rng);
    ASSERT_EQ(result.latencies_us.size(), 2u);
    EXPECT_DOUBLE_EQ(result.latencies_us[0], 5.0);
    EXPECT_DOUBLE_EQ(result.latencies_us[1], 5.0);
}

TEST(SummaryTable, ShapeAndStageLabels) {
    hcq::util::rng rng(22);
    const std::vector<pl::stage> stages{pl::stage::constant("cl", 1.0),
                                        pl::stage::constant("qu", 2.0)};
    const auto result = pl::simulate(stages, 50, {.interarrival_us = 4.0}, rng);
    // 10 headline metrics + 5 rows (utilisation, queue wait, mean/max
    // occupancy, drops) per stage.
    const auto named = pl::summary_table(result, {"cl", "qu"});
    EXPECT_EQ(named.columns(), 2u);
    EXPECT_EQ(named.rows(), 10u + 5u * stages.size());
    const auto numbered = pl::summary_table(result);
    EXPECT_EQ(numbered.rows(), named.rows());
    EXPECT_THROW((void)pl::summary_table(result, {"only-one"}), std::invalid_argument);
}

TEST(HybridStages, EndToEndHybridPipelineRuns) {
    hcq::util::rng rng(13);
    // Classical 1 us, quantum = 5 reads x 2.18 us (RA at s_p = 0.41).
    const auto stages = pl::make_hybrid_stages(1.0, 2.18, 5);
    const auto result = pl::simulate(stages, 200, {.interarrival_us = 12.0}, rng);
    EXPECT_NEAR(result.mean_latency_us, 1.0 + 5 * 2.18, 1e-6);
    EXPECT_GT(result.stage_utilization[1], result.stage_utilization[0]);
}

// ---------------------------------------------------------------------------
// Bounded buffers, backpressure policies, multi-server stages
// ---------------------------------------------------------------------------

TEST(Backpressure, NamesRoundTrip) {
    for (const auto policy : {pl::backpressure::block, pl::backpressure::drop_oldest,
                              pl::backpressure::drop_newest}) {
        EXPECT_EQ(pl::parse_backpressure(pl::to_string(policy)), policy);
    }
    EXPECT_THROW((void)pl::parse_backpressure("drop-random"), std::invalid_argument);
}

TEST(Bounded, CapacityZeroIsAConfigurationError) {
    // A zero-slot buffer could never admit a job, so it is rejected up
    // front instead of silently deadlocking or dropping the whole stream.
    hcq::util::rng rng(30);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 1.0)};
    EXPECT_THROW((void)pl::simulate(stages, 10, {.interarrival_us = 1.0}, rng,
                                    {.buffer_capacity = 0}),
                 std::invalid_argument);
}

TEST(Bounded, AmpleCapacityMatchesUnboundedExactly) {
    // With deterministic service models and more slots than jobs, the
    // bounded core must reproduce the unbounded recurrence bit for bit.
    const std::vector<pl::stage> stages{pl::stage::from_trace("a", {1.0, 2.0, 0.5}),
                                        pl::stage::constant("b", 1.5)};
    hcq::util::rng rng_a(31);
    const auto unbounded = pl::simulate(stages, 60, {.interarrival_us = 1.0}, rng_a);
    for (const auto policy : {pl::backpressure::block, pl::backpressure::drop_oldest,
                              pl::backpressure::drop_newest}) {
        SCOPED_TRACE(pl::to_string(policy));
        hcq::util::rng rng_b(31);
        const auto bounded =
            pl::simulate(stages, 60, {.interarrival_us = 1.0}, rng_b,
                         {.buffer_capacity = 1000, .policy = policy});
        EXPECT_EQ(bounded.jobs_completed, unbounded.jobs_completed);
        EXPECT_EQ(bounded.jobs_dropped, 0u);
        EXPECT_DOUBLE_EQ(bounded.makespan_us, unbounded.makespan_us);
        ASSERT_EQ(bounded.latencies_us.size(), unbounded.latencies_us.size());
        for (std::size_t j = 0; j < bounded.latencies_us.size(); ++j) {
            EXPECT_DOUBLE_EQ(bounded.latencies_us[j], unbounded.latencies_us[j]);
        }
        EXPECT_DOUBLE_EQ(bounded.mean_queue_wait_us[0], unbounded.mean_queue_wait_us[0]);
        EXPECT_DOUBLE_EQ(bounded.mean_queue_wait_us[1], unbounded.mean_queue_wait_us[1]);
    }
}

TEST(Bounded, DropNewestHandComputed) {
    // One 2-us server, arrivals every 1 us, one waiting slot: once the slot
    // is taken, every other arrival finds it occupied and is discarded.
    hcq::util::rng rng(32);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 2.0)};
    const auto result =
        pl::simulate(stages, 10, {.interarrival_us = 1.0}, rng,
                     {.buffer_capacity = 1, .policy = pl::backpressure::drop_newest});
    EXPECT_EQ(result.jobs_completed, 6u);  // jobs 0,1,2,4,6,8
    EXPECT_EQ(result.jobs_dropped, 4u);    // jobs 3,5,7,9
    EXPECT_DOUBLE_EQ(result.drop_rate, 0.4);
    EXPECT_EQ(result.stage_drops[0], 4u);
    EXPECT_DOUBLE_EQ(result.makespan_us, 12.0);
    const std::vector<double> want{2.0, 3.0, 4.0, 4.0, 4.0, 4.0};
    ASSERT_EQ(result.latencies_us.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_DOUBLE_EQ(result.latencies_us[j], want[j]);
    }
    EXPECT_EQ(result.max_queue_len[0], 1u);
}

TEST(Bounded, DropOldestHandComputed) {
    // Same offered load, but the newcomer evicts the waiting job: the
    // freshest work survives, so completed-job latency stays low.
    hcq::util::rng rng(33);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 2.0)};
    const auto result =
        pl::simulate(stages, 10, {.interarrival_us = 1.0}, rng,
                     {.buffer_capacity = 1, .policy = pl::backpressure::drop_oldest});
    EXPECT_EQ(result.jobs_completed, 6u);  // jobs 0,1,3,5,7,9
    EXPECT_EQ(result.jobs_dropped, 4u);    // jobs 2,4,6,8 evicted while queued
    EXPECT_EQ(result.stage_drops[0], 4u);
    EXPECT_DOUBLE_EQ(result.makespan_us, 12.0);
    const std::vector<double> want{2.0, 3.0, 3.0, 3.0, 3.0, 3.0};
    ASSERT_EQ(result.latencies_us.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_DOUBLE_EQ(result.latencies_us[j], want[j]);
    }
    // Drop-oldest keeps the completed-job p99 below drop-newest's: the
    // queue never holds stale work.
    EXPECT_DOUBLE_EQ(result.p99_latency_us, 3.0);
}

TEST(Bounded, BlockPolicyNeverDropsAndBoundsTheQueue) {
    // Blocking backpressure: offered jobs wait at the entrance instead of
    // being dropped; the buffer never exceeds its capacity and admission
    // delay shows up as latency.
    hcq::util::rng rng(34);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 2.0)};
    const auto result =
        pl::simulate(stages, 10, {.interarrival_us = 1.0}, rng,
                     {.buffer_capacity = 1, .policy = pl::backpressure::block});
    EXPECT_EQ(result.jobs_completed, 10u);
    EXPECT_EQ(result.jobs_dropped, 0u);
    EXPECT_DOUBLE_EQ(result.drop_rate, 0.0);
    EXPECT_DOUBLE_EQ(result.makespan_us, 20.0);  // server busy back to back
    EXPECT_LE(result.max_queue_len[0], 1u);
    // Job j starts at 2j and arrived at j: latency j + 2.
    ASSERT_EQ(result.latencies_us.size(), 10u);
    for (std::size_t j = 0; j < 10; ++j) {
        EXPECT_DOUBLE_EQ(result.latencies_us[j], static_cast<double>(j) + 2.0);
    }
}

TEST(Bounded, BlockingPropagatesUpstreamHandComputed) {
    // Two stages, one slot each: the 3-us bottleneck holds the 1-us
    // front-end, whose server must keep each finished job until the
    // downstream buffer admits it.  Departures settle into the bottleneck
    // period; every job survives.
    hcq::util::rng rng(35);
    const std::vector<pl::stage> stages{pl::stage::constant("a", 1.0),
                                        pl::stage::constant("b", 3.0)};
    const auto result =
        pl::simulate(stages, 6, {.interarrival_us = 0.5}, rng,
                     {.buffer_capacity = 1, .policy = pl::backpressure::block});
    EXPECT_EQ(result.jobs_completed, 6u);
    EXPECT_EQ(result.jobs_dropped, 0u);
    EXPECT_DOUBLE_EQ(result.makespan_us, 19.0);  // departures at 4,7,10,13,16,19
    const std::vector<double> want{4.0, 6.5, 9.0, 11.5, 14.0, 16.5};
    ASSERT_EQ(result.latencies_us.size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
        EXPECT_DOUBLE_EQ(result.latencies_us[j], want[j]);
    }
}

TEST(MultiServer, RoundRobinDoublesThroughput) {
    // One 2-us stage backed by two devices, fed every 1 us: the bank keeps
    // up exactly, so no job ever queues and every latency is the bare
    // service time.
    hcq::util::rng rng(36);
    const std::vector<pl::stage> stages{pl::stage::constant("bank", 2.0).with_servers(2)};
    const auto result = pl::simulate(stages, 100, {.interarrival_us = 1.0}, rng);
    EXPECT_NEAR(result.mean_latency_us, 2.0, 1e-12);
    EXPECT_NEAR(result.p99_latency_us, 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(result.makespan_us, 101.0);
    // Utilisation is measured against the bank's total capacity.
    EXPECT_NEAR(result.stage_utilization[0], 200.0 / (101.0 * 2.0), 1e-12);
    EXPECT_THROW((void)stages[0].with_servers(0), std::invalid_argument);
}

TEST(MultiServer, HybridBuilderReplicatesTheQuantumStage) {
    const auto stages = pl::make_hybrid_stages(3.0, 2.2, 10, 1.5, 4);
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].servers(), 1u);
    EXPECT_EQ(stages[1].servers(), 4u);
    EXPECT_THROW((void)pl::make_hybrid_stages(1.0, 1.0, 1, 0.0, 0), std::invalid_argument);
}

TEST(Streaming, DigestPercentilesTrackExactOnesWithoutRecording) {
    const std::vector<pl::stage> stages{pl::stage::lognormal("jitter", 5.0, 0.6)};
    hcq::util::rng rng_exact(37);
    const auto exact = pl::simulate(stages, 800, {.interarrival_us = 6.0}, rng_exact);
    hcq::util::rng rng_stream(37);
    const auto streamed = pl::simulate(stages, 800, {.interarrival_us = 6.0}, rng_stream,
                                       {.record_latencies = false});
    EXPECT_TRUE(streamed.latencies_us.empty());
    EXPECT_FALSE(exact.latencies_us.empty());
    // Identical simulated timeline, so the digest percentiles must land
    // within the digest's ~0.4% bin resolution of the exact ones.
    EXPECT_DOUBLE_EQ(streamed.makespan_us, exact.makespan_us);
    EXPECT_NEAR(streamed.p50_latency_us, exact.p50_latency_us, 0.02 * exact.p50_latency_us);
    EXPECT_NEAR(streamed.p99_latency_us, exact.p99_latency_us, 0.02 * exact.p99_latency_us);
}

TEST(Bounded, OverloadedDropRunReportsOccupancy) {
    hcq::util::rng rng(38);
    const std::vector<pl::stage> stages{pl::stage::constant("a", 1.0),
                                        pl::stage::constant("b", 4.0)};
    const auto result =
        pl::simulate(stages, 400, {.interarrival_us = 1.0}, rng,
                     {.buffer_capacity = 8, .policy = pl::backpressure::drop_oldest,
                      .record_latencies = false});
    EXPECT_GT(result.jobs_dropped, 0u);
    EXPECT_EQ(result.jobs_completed + result.jobs_dropped, 400u);
    // Drops happen at the bottleneck's buffer, not the front-end's.
    EXPECT_EQ(result.stage_drops[0], 0u);
    EXPECT_GT(result.stage_drops[1], 0u);
    EXPECT_LE(result.max_queue_len[1], 8u);
    EXPECT_GT(result.mean_queue_len[1], result.mean_queue_len[0]);
    // The bottleneck never starves under sustained overload.
    EXPECT_GT(result.stage_utilization[1], 0.9);
}

// ---------------------------------------------------------------------------
// Closed-loop (feedback) simulation — the ARQ re-entry core.
// ---------------------------------------------------------------------------

TEST(ClosedLoop, NoFeedbackMatchesOpenLoopOnDeterministicStages) {
    // With an empty feedback hook and deterministic single-server stages the
    // event-driven core must reproduce the feed-forward recurrence exactly.
    const std::vector<pl::stage> stages{pl::stage::constant("a", 10.0),
                                        pl::stage::constant("b", 5.0)};
    for (const double interarrival : {6.0, 12.0}) {
        SCOPED_TRACE(interarrival);
        hcq::util::rng rng_open(1);
        const auto open = pl::simulate(stages, 100, {.interarrival_us = interarrival},
                                       rng_open, {});
        hcq::util::rng rng_closed(1);
        const auto closed = pl::simulate_closed_loop(
            stages, 100, {.interarrival_us = interarrival}, rng_closed, {}, {});
        EXPECT_EQ(closed.num_jobs, open.num_jobs);
        EXPECT_EQ(closed.jobs_completed, open.jobs_completed);
        EXPECT_DOUBLE_EQ(closed.makespan_us, open.makespan_us);
        EXPECT_DOUBLE_EQ(closed.mean_latency_us, open.mean_latency_us);
        EXPECT_DOUBLE_EQ(closed.max_latency_us, open.max_latency_us);
        ASSERT_EQ(closed.latencies_us.size(), open.latencies_us.size());
        for (std::size_t j = 0; j < open.latencies_us.size(); ++j) {
            EXPECT_DOUBLE_EQ(closed.latencies_us[j], open.latencies_us[j]);
        }
    }
}

TEST(ClosedLoop, FeedbackReentersAtCompletionTime) {
    // One constant stage, one frame, one retransmission: the retransmission
    // arrives when the first attempt completes, so it departs at 2 x service.
    const std::vector<pl::stage> stages{pl::stage::constant("s", 10.0)};
    hcq::util::rng rng(1);
    std::vector<pl::completion> seen;
    const auto result = pl::simulate_closed_loop(
        stages, 1, {.interarrival_us = 5.0}, rng, {},
        [&](const pl::completion& c) {
            seen.push_back(c);
            return c.attempt < 1;
        });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].attempt, 0u);
    EXPECT_DOUBLE_EQ(seen[0].done_us, 10.0);
    EXPECT_EQ(seen[1].attempt, 1u);
    EXPECT_DOUBLE_EQ(seen[1].injected_us, 10.0);  // re-entered at completion
    EXPECT_DOUBLE_EQ(seen[1].done_us, 20.0);
    EXPECT_DOUBLE_EQ(seen[1].latency_us(), 10.0);
    EXPECT_EQ(seen[1].frame, 0u);
    EXPECT_DOUBLE_EQ(seen[1].offered_us, 0.0);
    EXPECT_EQ(result.num_jobs, 2u);
    EXPECT_EQ(result.jobs_completed, 2u);
    EXPECT_DOUBLE_EQ(result.makespan_us, 20.0);
}

TEST(ClosedLoop, RetransmissionsCompeteWithFreshArrivals) {
    // Two frames 1 us apart, 10 us service, every frame retransmitted once:
    // the four traversals serialise on the single server -> makespan 40.
    const std::vector<pl::stage> stages{pl::stage::constant("s", 10.0)};
    hcq::util::rng rng(1);
    const auto result = pl::simulate_closed_loop(
        stages, 2, {.interarrival_us = 1.0}, rng, {},
        [](const pl::completion& c) { return c.attempt < 1; });
    EXPECT_EQ(result.num_jobs, 4u);
    EXPECT_EQ(result.jobs_completed, 4u);
    EXPECT_DOUBLE_EQ(result.makespan_us, 40.0);
}

TEST(ClosedLoop, BlockPolicyNeverDropsUnderFeedbackOverload) {
    const std::vector<pl::stage> stages{pl::stage::constant("a", 4.0),
                                        pl::stage::constant("b", 8.0)};
    hcq::util::rng rng(1);
    const pl::sim_options options{.buffer_capacity = 1,
                                  .policy = pl::backpressure::block,
                                  .record_latencies = false};
    const auto result = pl::simulate_closed_loop(
        stages, 60, {.interarrival_us = 2.0}, rng, options,
        [](const pl::completion& c) { return c.attempt < 2; });
    EXPECT_EQ(result.num_jobs, 60u * 3u);
    EXPECT_EQ(result.jobs_completed, 60u * 3u);
    EXPECT_EQ(result.jobs_dropped, 0u);
    for (const std::size_t d : result.stage_drops) EXPECT_EQ(d, 0u);
    for (const std::size_t q : result.max_queue_len) EXPECT_LE(q, 1u);
}

TEST(ClosedLoop, DropOldestShedsRetransmissionOverload) {
    // Saturating offered load plus aggressive feedback: the bounded buffer
    // must shed, and the accounting must balance injections exactly.
    const std::vector<pl::stage> stages{pl::stage::constant("a", 4.0),
                                        pl::stage::constant("b", 8.0)};
    hcq::util::rng rng(1);
    const pl::sim_options options{.buffer_capacity = 2,
                                  .policy = pl::backpressure::drop_oldest,
                                  .record_latencies = false};
    const auto result = pl::simulate_closed_loop(
        stages, 100, {.interarrival_us = 3.0}, rng, options,
        [](const pl::completion& c) { return c.attempt < 2; });
    EXPECT_GT(result.jobs_dropped, 0u);
    EXPECT_EQ(result.jobs_completed + result.jobs_dropped, result.num_jobs);
    std::size_t stage_drop_sum = 0;
    for (const std::size_t d : result.stage_drops) stage_drop_sum += d;
    EXPECT_EQ(stage_drop_sum, result.jobs_dropped);
    for (const std::size_t q : result.max_queue_len) EXPECT_LE(q, 2u);
}

TEST(ClosedLoop, MultiServerStageServesRetransmissions) {
    // A 2-server bottleneck drains a retransmitting stream about twice as
    // fast as one server.
    const auto one = std::vector<pl::stage>{pl::stage::constant("q", 10.0)};
    const auto two = std::vector<pl::stage>{pl::stage::constant("q", 10.0).with_servers(2)};
    const auto feedback = [](const pl::completion& c) { return c.attempt < 1; };
    hcq::util::rng rng1(1);
    const auto serial = pl::simulate_closed_loop(one, 50, {.interarrival_us = 1.0}, rng1, {},
                                                 feedback);
    hcq::util::rng rng2(1);
    const auto banked = pl::simulate_closed_loop(two, 50, {.interarrival_us = 1.0}, rng2, {},
                                                 feedback);
    EXPECT_EQ(serial.jobs_completed, 100u);
    EXPECT_EQ(banked.jobs_completed, 100u);
    EXPECT_NEAR(banked.makespan_us, serial.makespan_us / 2.0, 15.0);
    EXPECT_GT(banked.throughput_per_us, 1.8 * serial.throughput_per_us);
}

TEST(ClosedLoop, ValidatesLikeTheOpenLoop) {
    hcq::util::rng rng(1);
    const std::vector<pl::stage> stages{pl::stage::constant("s", 1.0)};
    EXPECT_THROW((void)pl::simulate_closed_loop({}, 5, {}, rng, {}, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)pl::simulate_closed_loop(stages, 0, {}, rng, {}, {}),
                 std::invalid_argument);
    EXPECT_THROW((void)pl::simulate_closed_loop(stages, 5, {.interarrival_us = 0.0}, rng, {},
                                                {}),
                 std::invalid_argument);
    EXPECT_THROW((void)pl::simulate_closed_loop(stages, 5, {}, rng,
                                                {.buffer_capacity = 0}, {}),
                 std::invalid_argument);
}

}  // namespace
