#include "qubo/serialize.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hcq::qubo {

void write_qubo(std::ostream& os, const qubo_model& q) {
    os << "hcq-qubo v1\n";
    os << std::setprecision(17);
    os << "n " << q.num_variables() << " offset " << q.offset() << "\n";
    for (std::size_t i = 0; i < q.num_variables(); ++i) {
        for (std::size_t j = i; j < q.num_variables(); ++j) {
            const double c = q.coefficient(i, j);
            if (c != 0.0) os << i << " " << j << " " << c << "\n";
        }
    }
}

qubo_model read_qubo(std::istream& is) {
    std::string line;
    const auto next_content_line = [&](std::string& out) -> bool {
        while (std::getline(is, out)) {
            const auto first = out.find_first_not_of(" \t\r");
            if (first == std::string::npos) continue;  // blank
            if (out[first] == '#') continue;           // comment
            return true;
        }
        return false;
    };

    if (!next_content_line(line) || line.rfind("hcq-qubo v1", 0) != 0) {
        throw std::invalid_argument("read_qubo: missing 'hcq-qubo v1' header");
    }
    if (!next_content_line(line)) {
        throw std::invalid_argument("read_qubo: missing size line");
    }
    std::istringstream header(line);
    std::string n_tag;
    std::string offset_tag;
    std::size_t n = 0;
    double offset = 0.0;
    header >> n_tag >> n >> offset_tag >> offset;
    if (header.fail() || n_tag != "n" || offset_tag != "offset") {
        throw std::invalid_argument("read_qubo: malformed size line: '" + line + "'");
    }

    qubo_model q(n);
    q.set_offset(offset);
    std::vector<bool> seen(n * n, false);
    while (next_content_line(line)) {
        std::istringstream term(line);
        std::size_t i = 0;
        std::size_t j = 0;
        double c = 0.0;
        term >> i >> j >> c;
        if (term.fail()) {
            throw std::invalid_argument("read_qubo: malformed term line: '" + line + "'");
        }
        if (i >= n || j >= n || i > j) {
            throw std::invalid_argument("read_qubo: bad indices in '" + line + "'");
        }
        if (seen[i * n + j]) {
            throw std::invalid_argument("read_qubo: duplicate term in '" + line + "'");
        }
        seen[i * n + j] = true;
        q.set_term(i, j, c);
    }
    return q;
}

std::string to_string(const qubo_model& q) {
    std::ostringstream os;
    write_qubo(os, q);
    return os.str();
}

qubo_model from_string(const std::string& text) {
    std::istringstream is(text);
    return read_qubo(is);
}

}  // namespace hcq::qubo
