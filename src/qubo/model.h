// Quadratic Unconstrained Binary Optimization (QUBO) model — Eq. (1) of the
// paper: E({q}) = sum_{i<=j} Q_ij q_i q_j over q in {0,1}^N, with Q upper
// triangular.  A constant `offset` is carried alongside so that reductions
// (e.g. the ML-to-QUBO transform, variable fixing, Ising round-trips) can
// preserve the original objective exactly: original(q) = energy(q) + offset.
#ifndef HCQ_QUBO_MODEL_H
#define HCQ_QUBO_MODEL_H

#include <version>

// The library's public interfaces take std::span<const std::uint8_t> and the
// implementation relies on other C++20 features (<numbers>, CTAD for
// scoped_lock, defaulted comparisons).  Under -std=c++17 the failure mode is
// pages of unrelated template errors, so fail here with the actual cause.
#if !defined(__cpp_lib_span) || __cpp_lib_span < 202002L
#error "hcq requires C++20 (std::span unavailable) — build with -std=c++20; the CMake build sets this via CMAKE_CXX_STANDARD 20"
#endif

#include <cstdint>
#include <span>
#include <vector>

namespace hcq::qubo {

/// Bit string type used by every solver: one byte per binary variable.
using bit_vector = std::vector<std::uint8_t>;

/// Dense QUBO over n binary variables.
///
/// Internally stores a symmetric mirror of the upper-triangular coefficient
/// matrix so that per-variable "local field" queries (the quantity that makes
/// single-bit-flip moves O(N)) are cache-friendly.
class qubo_model {
public:
    qubo_model() = default;

    /// Zero QUBO on n variables.
    explicit qubo_model(std::size_t n);

    /// Re-initialises to the zero QUBO on n variables, reusing the existing
    /// coefficient storage when it is large enough (hot-path model reuse).
    void reset(std::size_t n);

    [[nodiscard]] std::size_t num_variables() const noexcept { return n_; }

    /// Q_ii, the linear coefficient of variable i.
    [[nodiscard]] double linear(std::size_t i) const;

    /// Q_min(i,j),max(i,j): the coupling between two distinct variables
    /// (order-insensitive).  i == j returns linear(i).
    [[nodiscard]] double coefficient(std::size_t i, std::size_t j) const;

    /// Adds v to Q_ij (order-insensitive; i == j adds to the linear term).
    void add_term(std::size_t i, std::size_t j, double v);

    /// Overwrites Q_ij (order-insensitive).
    void set_term(std::size_t i, std::size_t j, double v);

    /// Constant carried alongside the quadratic form.
    [[nodiscard]] double offset() const noexcept { return offset_; }
    void set_offset(double v) noexcept { offset_ = v; }
    void add_offset(double v) noexcept { offset_ += v; }

    /// E(q) per Eq. (1) — does NOT include the offset.
    [[nodiscard]] double energy(std::span<const std::uint8_t> bits) const;

    /// E(q) + offset: the value of the objective the QUBO was reduced from.
    [[nodiscard]] double energy_with_offset(std::span<const std::uint8_t> bits) const {
        return energy(bits) + offset_;
    }

    /// Local field of variable i under assignment `bits`:
    ///   field_i = Q_ii + sum_{j != i} Q_c(i,j) q_j,
    /// so flipping q_i changes the energy by (1 - 2 q_i) * field_i.
    [[nodiscard]] double local_field(std::size_t i, std::span<const std::uint8_t> bits) const;

    /// All local fields at once (O(N^2)).
    [[nodiscard]] std::vector<double> local_fields(std::span<const std::uint8_t> bits) const;

    /// local_fields into a reused buffer (bit-identical values).
    void local_fields_into(std::span<const std::uint8_t> bits, std::vector<double>& fields) const;

    /// Energy change if q_i were flipped.
    [[nodiscard]] double flip_delta(std::size_t i, std::span<const std::uint8_t> bits) const;

    /// Largest |Q_ij| over all stored coefficients (0 for an empty model);
    /// used by solvers to scale temperatures.
    [[nodiscard]] double max_abs_coefficient() const noexcept;

    /// Fixes variable i to `value`, returning the reduced QUBO on n-1
    /// variables (couplings fold into linear terms, linear folds into the
    /// offset).  `mapping` receives, for each reduced index, the original
    /// index it came from.
    [[nodiscard]] qubo_model fix_variable(std::size_t i, std::uint8_t value,
                                          std::vector<std::size_t>* mapping = nullptr) const;

    /// Direct read-only access to the symmetric coefficient row of variable
    /// i (length n; entry i is the linear term).  Enables O(N) field updates
    /// in hot solver loops without per-element index arithmetic.  Inline:
    /// called once per accepted flip, so a cross-TU call here shows up in
    /// every sweep-solver profile.
    [[nodiscard]] std::span<const double> row(std::size_t i) const {
        check_index(i);
        return {sym_.data() + i * n_, n_};
    }

private:
    /// Bounds check kept inline so hot accessors reduce to compare-and-go;
    /// the throw itself stays out-of-line (cold).
    void check_index(std::size_t i) const {
        if (i >= n_) throw_bad_index(i);
    }
    [[noreturn]] void throw_bad_index(std::size_t i) const;

    std::size_t n_ = 0;
    double offset_ = 0.0;
    // Symmetric dense storage: sym_[i*n + j] == sym_[j*n + i] == Q_c(i,j) for
    // i != j; diagonal holds Q_ii.  The canonical upper-triangular view is
    // recovered by reading i <= j.
    std::vector<double> sym_;
};

/// Convenience: number of bit strings agreeing with `reference` (for tests).
[[nodiscard]] std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                           std::span<const std::uint8_t> b);

}  // namespace hcq::qubo

#endif  // HCQ_QUBO_MODEL_H
