// Uplink multi-user MIMO detection instances: y = H x + n.
//
// An instance bundles everything a detector needs (channel, observation,
// modulation) plus the ground truth used for evaluation.  The paper's corpus
// (Section 4.2) is synthesised with `noiseless_paper_instance`.
#ifndef HCQ_WIRELESS_MIMO_H
#define HCQ_WIRELESS_MIMO_H

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"
#include "wireless/channel.h"
#include "wireless/channel_spec.h"
#include "wireless/modulation.h"

namespace hcq::wireless {

/// One detection problem y = H x (+ n) together with its ground truth.
struct mimo_instance {
    modulation mod = modulation::bpsk;
    std::size_t num_users = 0;     ///< transmit streams (N_t)
    std::size_t num_antennas = 0;  ///< receive antennas (N_r)
    linalg::cmat h;                ///< channel as the DETECTOR sees it (H_est)
    /// The channel the PHYSICS applied when imperfect CSI is in play
    /// (H_true; `h` is then the pilot estimate).  Empty == perfect CSI,
    /// h is the true channel.
    linalg::cmat h_true;
    std::vector<std::uint8_t> tx_bits;  ///< ground-truth bits (natural map)
    linalg::cvec tx_symbols;       ///< ground-truth symbols
    linalg::cvec y;                ///< received vector
    double noise_variance = 0.0;   ///< AWGN variance (0 = noiseless)
    double csi_error_variance = 0.0;  ///< per-entry variance of h - true_channel()

    /// The channel that generated `y`: `h_true` under imperfect CSI, `h`
    /// otherwise.
    [[nodiscard]] const linalg::cmat& true_channel() const noexcept {
        return h_true.empty() ? h : h_true;
    }

    /// Number of QUBO variables this instance reduces to.
    [[nodiscard]] std::size_t num_bits() const {
        return num_users * bits_per_symbol(mod);
    }

    /// Maximum-likelihood cost ||y - H x||^2 of a candidate symbol vector.
    [[nodiscard]] double ml_cost(const linalg::cvec& x) const;

    /// ml_cost with a caller-owned residual buffer — bit-identical value,
    /// no allocation after warm-up.
    double ml_cost(const linalg::cvec& x, linalg::cvec& residual_scratch) const;

    /// ML cost of a candidate bit string (natural map).
    [[nodiscard]] double ml_cost_bits(std::span<const std::uint8_t> bits) const;

    /// ml_cost_bits with caller-owned symbol and residual buffers.
    double ml_cost_bits(std::span<const std::uint8_t> bits, linalg::cvec& symbol_scratch,
                        linalg::cvec& residual_scratch) const;
};

/// Parameters for instance synthesis.
struct mimo_config {
    modulation mod = modulation::qam16;
    std::size_t num_users = 8;
    std::size_t num_antennas = 8;  ///< paper uses N_r = N_t
    channel_model channel = channel_model::unit_gain_random_phase;
    double noise_variance = 0.0;   ///< 0 disables AWGN (paper setting)
};

/// Draws a random instance: random channel, uniform random bits, y = Hx + n.
[[nodiscard]] mimo_instance synthesize(util::rng& rng, const mimo_config& config);

/// synthesize into a reused instance (same draws, same fields); a warmed-up
/// instance makes repeated synthesis allocation-free.
void synthesize_into(util::rng& rng, const mimo_config& config, mimo_instance& inst);

/// Synthesises an instance whose channel comes from `process` evaluated at
/// time `t` (channel uses) instead of `config.channel`, with optional
/// imperfect CSI: when `csi_error_variance > 0`, `y` is generated through
/// the true channel H(t) while `inst.h` becomes the pilot estimate
/// H(t) + E, E_ij ~ CN(0, csi_error_variance) (and `h_true` records H(t)).
///
/// Draw-order contract (the bit-compatibility invariant link goldens pin):
/// the per-use `rng` is consumed in the same order as `synthesize` —
/// channel draw first (i.i.d. processes only; correlated processes leave
/// the rng untouched), then tx bits, then AWGN — and the estimation-error
/// draws come LAST, only when csi_error_variance > 0.  Hence an i.i.d.
/// process with csi_error_variance == 0 is byte-identical to `synthesize`.
[[nodiscard]] mimo_instance synthesize_at(util::rng& rng, const mimo_config& config,
                                          const channel_process& process, double t,
                                          double csi_error_variance);

/// synthesize_at into a reused instance (same draws, same fields).
void synthesize_at_into(util::rng& rng, const mimo_config& config,
                        const channel_process& process, double t, double csi_error_variance,
                        mimo_instance& inst);

/// synthesize_into with the transmitted bits OVERRIDDEN by `tx_bits` — how
/// the coded link (src/fec) puts a frame's coded bits on the air.  Draw-
/// order contract: the rng is consumed EXACTLY as synthesize_into consumes
/// it — the uniform tx-bit draws still happen (and are discarded) — so the
/// channel and AWGN realisations of a coded use are byte-identical to the
/// uncoded use at the same stream index, making coded-vs-uncoded an A/B
/// comparison on identical channels.  Throws std::invalid_argument when
/// `tx_bits` is not num_users * bits_per_symbol(mod) long.
void synthesize_coded_into(util::rng& rng, const mimo_config& config,
                           std::span<const std::uint8_t> tx_bits, mimo_instance& inst);

/// The coded-bits override of synthesize_at_into, same draw-order contract
/// (estimation-error draws still strictly last).
void synthesize_at_coded_into(util::rng& rng, const mimo_config& config,
                              const channel_process& process, double t,
                              double csi_error_variance,
                              std::span<const std::uint8_t> tx_bits, mimo_instance& inst);

/// The exact corpus recipe of the paper: unit-gain random-phase channel,
/// N_r = N_t = num_users, no AWGN.
[[nodiscard]] mimo_instance noiseless_paper_instance(util::rng& rng, std::size_t num_users,
                                                     modulation mod);

/// Chooses (users, modulation) combinations giving `num_variables` QUBO
/// variables; throws if no modulation divides the requested size.
[[nodiscard]] std::size_t users_for_variables(modulation mod, std::size_t num_variables);

}  // namespace hcq::wireless

#endif  // HCQ_WIRELESS_MIMO_H
